package radio

import (
	"testing"

	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/region"
)

// TestSX1302FrontEndChannels pins the derived plan of the 8-chain layout:
// the contiguous 902.3–903.7 MHz block on the 200 kHz grid.
func TestSX1302FrontEndChannels(t *testing.T) {
	want := []region.Hz{
		902_300_000, 902_500_000, 902_700_000, 902_900_000,
		903_100_000, 903_300_000, 903_500_000, 903_700_000,
	}
	chs := SX1302FrontEnd.Channels()
	if len(chs) != len(want) {
		t.Fatalf("%d channels, want %d", len(chs), len(want))
	}
	for i, ch := range chs {
		if ch.Center != want[i] {
			t.Errorf("channel %d at %v, want %v", i, ch.Center, want[i])
		}
		if ch.Bandwidth != lora.BW125 {
			t.Errorf("channel %d bandwidth %v", i, ch.Bandwidth)
		}
	}
}

// TestSX1302FrontEnd9ServiceChannel checks the 9-chain layout adds exactly
// the 903.0 MHz service channel and nothing else.
func TestSX1302FrontEnd9ServiceChannel(t *testing.T) {
	base := map[region.Hz]bool{}
	for _, ch := range SX1302FrontEnd.Channels() {
		base[ch.Center] = true
	}
	var extra []region.Hz
	for _, ch := range SX1302FrontEnd9.Channels() {
		if !base[ch.Center] {
			extra = append(extra, ch.Center)
		}
	}
	if len(extra) != 1 || extra[0] != 903_000_000 {
		t.Fatalf("extra channels %v, want [903.0 MHz]", extra)
	}
	if n := len(SX1302FrontEnd9.Channels()); n != 9 {
		t.Fatalf("9-chain layout derived %d channels", n)
	}
}

// TestFrontEndConfigValidates holds every built-in layout valid against
// its own chipset: chain count within RxChains, span within SpanHz.
func TestFrontEndConfigValidates(t *testing.T) {
	for _, fe := range FrontEnds {
		cfg, err := fe.Config(lora.SyncPublic)
		if err != nil {
			t.Errorf("%s: %v", fe.Name, err)
			continue
		}
		if len(cfg.Channels) > fe.Chipset.RxChains {
			t.Errorf("%s: %d channels exceed %d chains", fe.Name, len(cfg.Channels), fe.Chipset.RxChains)
		}
		if _, err := New(nil, fe.Chipset, cfg); err != nil {
			t.Errorf("%s: radio.New: %v", fe.Name, err)
		}
	}
}

// TestFrontEndChannelDedup checks duplicate IF tunings collapse.
func TestFrontEndChannelDedup(t *testing.T) {
	fe := SX1302FrontEnd
	fe.Chains = append([]IFChain{}, fe.Chains...)
	fe.Chains = append(fe.Chains, IFChain{0, 0}) // duplicate of chain 2
	if n := len(fe.Channels()); n != 8 {
		t.Fatalf("deduped plan has %d channels, want 8", n)
	}
}

// TestClassifyDownlink pins the RX1/RX2 window classification the gateway
// simulator applies to PULL_RESP downlinks.
func TestClassifyDownlink(t *testing.T) {
	fe := SX1302FrontEnd
	sf12 := lora.DRFromSF(12)
	sf7 := lora.DRFromSF(7)
	cases := []struct {
		hz   region.Hz
		dr   lora.DR
		want DownlinkWindow
	}{
		{923_300_000, sf12, WindowRX2}, // the fixed RX2 window
		{923_300_000, sf7, WindowNone}, // RX2 frequency, wrong DR
		{902_300_000, sf7, WindowRX1},  // uplink channel reuse
		{903_700_000, sf12, WindowRX1}, // RX1 at any DR
		{915_000_000, sf7, WindowNone}, // out of plan
		{903_000_000, sf7, WindowNone}, // service channel only on 9if
	}
	for _, c := range cases {
		if got := fe.ClassifyDownlink(c.hz, c.dr); got != c.want {
			t.Errorf("ClassifyDownlink(%v, %v) = %v, want %v", c.hz, c.dr, got, c.want)
		}
	}
	if got := SX1302FrontEnd9.ClassifyDownlink(903_000_000, sf7); got != WindowRX1 {
		t.Errorf("9if service channel classified %v, want rx1", got)
	}
}

// TestFrontEndByName covers the registry lookup.
func TestFrontEndByName(t *testing.T) {
	if fe, ok := FrontEndByName("sx1302-9if"); !ok || fe.MaxRxPkt != 8 {
		t.Fatalf("lookup sx1302-9if = %+v, %v", fe, ok)
	}
	if _, ok := FrontEndByName("sx1262"); ok {
		t.Fatal("unknown name resolved")
	}
}
