package radio

import (
	"fmt"
	"sort"

	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/region"
)

// This file models the concentrator *front end*: how a real gateway board
// derives its channel plan from two RF chains (radios) and a set of
// intermediate-frequency (IF) chains, each IF chain feeding one multi-SF
// demodulator. The Chipset type above captures the reception *resources*
// (chains, decoder pool, span); FrontEnd captures the *layout* — which
// absolute frequencies those resources end up monitoring, plus the Class A
// RX2 window and the HAL's per-poll demodulation bound.
//
// The profiles below are grounded in the reference SX1302 packet-forwarder
// HAL configuration: RADIO_0 at 902.7 MHz and RADIO_1 at 903.7 MHz, IF
// offsets drawn from {-400, -200, 0, +200, +400} kHz split five/three
// across the two radios, a LoRa "service" channel at RADIO_0 + 300 kHz on
// the 9-chain layout, an RX2 window at 923.3 MHz SF12, and at most 8
// packets fetched from the demodulator per poll (MAX_RX_PKT).

// IFChain is one intermediate-frequency chain: an offset from the center
// frequency of the RF chain (radio) that feeds it. The monitored channel
// sits at Radios[RFChain] + OffsetHz.
type IFChain struct {
	RFChain  int       // index into FrontEnd.Radios
	OffsetHz region.Hz // IF offset from the radio's center
}

// DownlinkWindow classifies where a downlink lands on a front end.
type DownlinkWindow int

const (
	// WindowNone: the downlink matches neither the uplink plan nor RX2 —
	// the gateway would reject the PULL_RESP ("TX freq out of range").
	WindowNone DownlinkWindow = iota
	// WindowRX1: the downlink reuses an uplink channel (Class A RX1).
	WindowRX1
	// WindowRX2: the downlink sits on the fixed RX2 frequency at the RX2
	// data rate.
	WindowRX2
)

func (w DownlinkWindow) String() string {
	switch w {
	case WindowRX1:
		return "rx1"
	case WindowRX2:
		return "rx2"
	}
	return "none"
}

// FrontEnd is a concrete concentrator board layout.
type FrontEnd struct {
	Name    string
	Chipset Chipset
	// Radios are the RF-chain center frequencies (RADIO_0/RADIO_1 in the
	// HAL's board configuration).
	Radios [2]region.Hz
	// Chains are the IF chains; each yields one monitored 125 kHz channel.
	Chains []IFChain
	// RX2 is the Class A second receive window: fixed frequency, fixed
	// data rate, always open regardless of the uplink channel.
	RX2   region.Channel
	RX2DR lora.DR
	// MaxRxPkt is the HAL's demodulation fetch bound: at most this many
	// packets come out of the front end per poll, so one PUSH_DATA carries
	// at most MaxRxPkt rxpks.
	MaxRxPkt int
}

// SX1302Chipset9 extends the SX1302 resource profile with the LoRa
// service (standalone single-SF) demodulator as a ninth chain. The base
// SX1302 profile in radio.go counts only the 8 multi-SF chains; the
// 9-chain front end needs the service demodulator accounted for or its
// channel plan would not validate.
var SX1302Chipset9 = Chipset{Name: "SX1302+STD", RxChains: 9, Decoders: 16, SpanHz: 1_600_000}

// SX1302FrontEnd is the 8-chain reference layout: five IF chains on
// RADIO_0 (-400…+400 kHz) and three on RADIO_1 (-400…0 kHz), yielding the
// contiguous 902.3–903.7 MHz plan.
var SX1302FrontEnd = FrontEnd{
	Name:    "sx1302",
	Chipset: SX1302,
	Radios:  [2]region.Hz{902_700_000, 903_700_000},
	Chains: []IFChain{
		{0, -400_000}, {0, -200_000}, {0, 0}, {0, 200_000}, {0, 400_000},
		{1, -400_000}, {1, -200_000}, {1, 0},
	},
	RX2:      region.Channel{Center: 923_300_000, Bandwidth: lora.BW125},
	RX2DR:    lora.DRFromSF(12),
	MaxRxPkt: 8,
}

// SX1302FrontEnd9 adds the LoRa service channel at RADIO_0 + 300 kHz
// (903.0 MHz) as a ninth chain, the HAL's standalone single-SF
// demodulator.
var SX1302FrontEnd9 = FrontEnd{
	Name:    "sx1302-9if",
	Chipset: SX1302Chipset9,
	Radios:  [2]region.Hz{902_700_000, 903_700_000},
	Chains: []IFChain{
		{0, -400_000}, {0, -200_000}, {0, 0}, {0, 200_000}, {0, 400_000},
		{1, -400_000}, {1, -200_000}, {1, 0},
		{0, 300_000}, // LoRa service channel
	},
	RX2:      region.Channel{Center: 923_300_000, Bandwidth: lora.BW125},
	RX2DR:    lora.DRFromSF(12),
	MaxRxPkt: 8,
}

// FrontEnds lists the built-in board layouts.
var FrontEnds = []FrontEnd{SX1302FrontEnd, SX1302FrontEnd9}

// FrontEndByName looks a built-in layout up by its Name.
func FrontEndByName(name string) (FrontEnd, bool) {
	for _, fe := range FrontEnds {
		if fe.Name == name {
			return fe, true
		}
	}
	return FrontEnd{}, false
}

// Channels derives the monitored channel set from the radio centers and IF
// chains: channel i sits at Radios[Chains[i].RFChain] + Chains[i].OffsetHz.
// Duplicate frequencies (two IF chains tuned to the same channel) collapse
// to one entry; the result is sorted by center frequency.
func (fe FrontEnd) Channels() []region.Channel {
	seen := make(map[region.Hz]bool, len(fe.Chains))
	chs := make([]region.Channel, 0, len(fe.Chains))
	for _, c := range fe.Chains {
		hz := fe.Radios[c.RFChain] + c.OffsetHz
		if seen[hz] {
			continue
		}
		seen[hz] = true
		chs = append(chs, region.Channel{Center: hz, Bandwidth: lora.BW125})
	}
	sort.Slice(chs, func(i, j int) bool { return chs[i].Center < chs[j].Center })
	return chs
}

// Config builds the radio configuration the front end monitors, validated
// against its own chipset limits (chain count and frequency span).
func (fe FrontEnd) Config(sync lora.SyncWord) (Config, error) {
	cfg := Config{Channels: fe.Channels(), Sync: sync}
	if err := cfg.Validate(fe.Chipset); err != nil {
		return Config{}, fmt.Errorf("front end %s: %w", fe.Name, err)
	}
	return cfg, nil
}

// Model wraps the front end's chipset as a GatewayModel for gateway.New.
func (fe FrontEnd) Model() GatewayModel {
	return GatewayModel{Manufacturer: "Semtech", Model: fe.Name, Chipset: fe.Chipset}
}

// ClassifyDownlink reports which receive window a downlink transmission
// would use on this front end: RX2 when it matches the fixed RX2
// frequency and data rate, RX1 when it reuses one of the uplink channels,
// and none otherwise (the real HAL rejects such a PULL_RESP).
func (fe FrontEnd) ClassifyDownlink(center region.Hz, dr lora.DR) DownlinkWindow {
	if center == fe.RX2.Center {
		if dr == fe.RX2DR {
			return WindowRX2
		}
		return WindowNone
	}
	for _, c := range fe.Chains {
		if fe.Radios[c.RFChain]+c.OffsetHz == center {
			return WindowRX1
		}
	}
	return WindowNone
}
