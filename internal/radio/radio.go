// Package radio models the packet-reception pipeline of a COTS LoRaWAN
// gateway radio, as reverse-engineered by the paper (§3.1, Appendix C):
//
//	RF front-end → per-chain packet detector → FCFS dispatcher → decoder pool
//
// The pivotal behaviours reproduced here are:
//
//  1. Lock-on: a packet enters the pipeline when its *preamble finishes*,
//     not when it starts (Figure 3a/b).
//  2. FCFS dispatch: the dispatcher allocates decoders strictly in lock-on
//     order across all Rx chains; when the pool is exhausted, later
//     packets are dropped regardless of SNR or channel (Figure 3c/d).
//  3. Decode-then-filter: the sync word distinguishing coexisting networks
//     is only available after decoding, so foreign packets occupy decoders
//     all the way through (Figure 3e/f) — the decoder contention problem.
//
// The radio knows nothing about propagation; the medium package evaluates
// whether a locked-on packet actually decodes (SINR, capture) through the
// judge callback supplied at lock-on.
package radio

import (
	"fmt"

	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/events"
	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/region"
)

// Chipset describes the reception resources of a gateway radio
// (Table 4 of the paper).
type Chipset struct {
	Name string
	// RxChains is the number of concurrent 125 kHz channels the radio can
	// monitor (the "+1" wideband/FSK chain of real chipsets is ignored —
	// the paper's experiments never use it).
	RxChains int
	// Decoders is the size of the packet-decoder pool: the hard limit on
	// concurrent receptions.
	Decoders int
	// SpanHz is the maximal frequency span between the lowest and highest
	// configured channel edges ("maximal radio bandwidth" B_j in §4.3.1).
	SpanHz region.Hz
}

// Chipset profiles from Table 4.
var (
	SX1301 = Chipset{Name: "SX1301", RxChains: 8, Decoders: 8, SpanHz: 1_600_000}
	SX1308 = Chipset{Name: "SX1308", RxChains: 8, Decoders: 8, SpanHz: 1_600_000}
	SX1302 = Chipset{Name: "SX1302", RxChains: 8, Decoders: 16, SpanHz: 1_600_000}
	SX1303 = Chipset{Name: "SX1303x2", RxChains: 16, Decoders: 32, SpanHz: 3_200_000}
)

// GatewayModel is one commercial gateway product (Table 4).
type GatewayModel struct {
	Manufacturer string
	Model        string
	Chipset      Chipset
}

// TheoreticalCapacity returns the concurrent-user capacity of the
// channels the radio monitors (chains × orthogonal DRs) — what the
// decoder pool would need to support to avoid contention.
func (m GatewayModel) TheoreticalCapacity() int { return m.Chipset.RxChains * lora.NumDRs }

// PracticalCapacity returns the decoder-pool bound on concurrent packets.
func (m GatewayModel) PracticalCapacity() int { return m.Chipset.Decoders }

// Models reproduces Table 4.
var Models = []GatewayModel{
	{"Dragino", "LPS8N", SX1302},
	{"Dragino", "LPS8V2", SX1302},
	{"RAKwireless", "RAK7246G", SX1308},
	{"RAKwireless", "RAK7268CV2", SX1302},
	{"RAKwireless", "RAK7289CV2", SX1303},
	{"Kerlink", "Wirnet iBTS", SX1301},
	{"Kerlink", "Wirnet iFemtoCell", SX1301},
}

// DropReason classifies why the radio did not deliver a packet.
type DropReason int

// Drop reasons. The distinction drives the loss-cause breakdowns of
// Figures 4 and 13c.
const (
	// DropNone means the packet was delivered.
	DropNone DropReason = iota
	// DropNoDecoder: the dispatcher found the decoder pool exhausted at
	// lock-on — the decoder contention problem.
	DropNoDecoder
	// DropChannelContention: decode failed against an interferer with
	// identical transmission settings (same channel, same SF).
	DropChannelContention
	// DropWeakSignal: decode failed on SINR (noise, cross-channel or
	// cross-SF interference, poor link).
	DropWeakSignal
	// DropForeignNetwork: the packet decoded fine but carried another
	// network's sync word; it is discarded after having consumed a
	// decoder (decode-then-filter).
	DropForeignNetwork
	// DropGatewayDown: the receiving gateway was offline (rebooting to
	// apply a new configuration) for the packet's whole airtime. Kept
	// distinct from DropWeakSignal so loss-cause breakdowns never conflate
	// reboot downtime (Figure 17's availability term) with link budget.
	DropGatewayDown
)

func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "delivered"
	case DropNoDecoder:
		return "decoder-contention"
	case DropChannelContention:
		return "channel-contention"
	case DropWeakSignal:
		return "weak-signal"
	case DropForeignNetwork:
		return "foreign-network"
	case DropGatewayDown:
		return "gateway-down"
	}
	return fmt.Sprintf("DropReason(%d)", int(r))
}

// DecodeVerdict is the physical-layer result the medium computes for a
// packet that occupied a decoder to completion.
type DecodeVerdict int

// Verdicts returned by the judge callback.
const (
	VerdictOK DecodeVerdict = iota
	VerdictChannelCollision
	VerdictWeakSignal
)

// Meta describes one incoming packet as seen by the radio front-end.
type Meta struct {
	// ID is the transmission identity (unique per medium transmission).
	ID int64
	// Network is the sync word embedded in the frame — readable only
	// after decode.
	Network lora.SyncWord
	SF      lora.SF
	Channel region.Channel
	// Chain is the index of the Rx chain that detected the packet.
	Chain int
	// RSSIdBm and SNRdB are the front-end estimates recorded as metadata
	// for the network server's logs.
	RSSIdBm float64
	SNRdB   float64
	// LockOn is when the preamble completed; End is when the packet's
	// payload finishes on air (decoder release time).
	LockOn des.Time
	End    des.Time
}

// Result reports the fate of one packet at this radio.
type Result struct {
	Meta   Meta
	Reason DropReason
}

// Judge lets the medium decide, at decode completion, whether the packet
// survived the channel (capture, SINR). It runs exactly once per locked-on
// packet.
//
// The judge is the radio's pluggable collision seam: the radio itself
// only models decoder occupancy (FCFS pool, preamble lock-on) and defers
// every same-settings collision verdict to this callback. The medium's
// default judge applies the classic single-winner capture margin; with a
// mac.CaptureModel installed on the medium the identical callback path
// yields CurvingLoRa-style concurrent decodes instead — no radio state
// or dispatch changes, only the verdict policy behind this type.
type Judge func() DecodeVerdict

// Config is the channel configuration of a radio: which center frequencies
// its Rx chains monitor. Config is what AlphaWAN's channel planning
// reprograms (Strategies ① and ②).
type Config struct {
	Channels []region.Channel
	Sync     lora.SyncWord
}

// Validate checks the configuration against the chipset limits: at most
// RxChains channels within the radio's frequency span.
func (c Config) Validate(cs Chipset) error {
	if len(c.Channels) == 0 {
		return fmt.Errorf("radio: no channels configured")
	}
	if len(c.Channels) > cs.RxChains {
		return fmt.Errorf("radio: %d channels exceed %s's %d Rx chains",
			len(c.Channels), cs.Name, cs.RxChains)
	}
	lo, hi := c.Channels[0].Low(), c.Channels[0].High()
	for _, ch := range c.Channels[1:] {
		if ch.Low() < lo {
			lo = ch.Low()
		}
		if ch.High() > hi {
			hi = ch.High()
		}
	}
	if span := hi - lo; span > cs.SpanHz {
		return fmt.Errorf("radio: %v span exceeds %s's %v limit",
			span, cs.Name, cs.SpanHz)
	}
	return nil
}

// Radio is one gateway radio instance attached to a simulation.
type Radio struct {
	sim     *des.Sim
	chipset Chipset
	cfg     Config

	busy        int // decoders in use
	busyForeign int // decoders held by foreign-network packets
	// poolLimit caps the usable decoder pool when > 0 (fault injection:
	// partial decoder degradation, e.g. 16→8 mid-run). Decodes in flight
	// when the limit drops keep their decoders until completion; only new
	// allocations honor the reduced pool.
	poolLimit int

	// Results publishes the fate of every packet that reached the
	// dispatcher (delivered or dropped, including foreign packets). The
	// medium's port router subscribes first (WirePort), then any number
	// of additional observers.
	Results events.Topic[Result]

	// taskFree recycles decode tasks (see decodeTask) so an accepted
	// lock-on allocates nothing in steady state.
	taskFree *decodeTask

	stats Stats
}

// Stats aggregates the radio's dispatcher activity.
type Stats struct {
	Delivered int
	NoDecoder int
	Collision int
	Weak      int
	Foreign   int
	PeakInUse int
	TotalSeen int // packets that reached the dispatcher
}

// New creates a radio on the simulation with a chipset and configuration.
func New(sim *des.Sim, cs Chipset, cfg Config) (*Radio, error) {
	if err := cfg.Validate(cs); err != nil {
		return nil, err
	}
	return &Radio{sim: sim, chipset: cs, cfg: cfg}, nil
}

// Chipset returns the radio's chipset profile.
func (r *Radio) Chipset() Chipset { return r.chipset }

// Config returns the current channel configuration.
func (r *Radio) Config() Config { return r.cfg }

// Reconfigure replaces the channel configuration (the reboot downtime is
// modelled by the gateway layer, which detaches the radio while it
// restarts).
func (r *Radio) Reconfigure(cfg Config) error {
	if err := cfg.Validate(r.chipset); err != nil {
		return err
	}
	r.cfg = cfg
	return nil
}

// Stats returns a snapshot of the dispatcher statistics.
func (r *Radio) Stats() Stats { return r.stats }

// ResetStats clears the statistics counters.
func (r *Radio) ResetStats() { r.stats = Stats{} }

// InUse returns the number of decoders currently occupied.
func (r *Radio) InUse() int { return r.busy }

// DecoderLimit returns the effective decoder-pool size: the chipset's
// pool, or the degraded cap installed by SetDecoderLimit.
func (r *Radio) DecoderLimit() int {
	if r.poolLimit > 0 && r.poolLimit < r.chipset.Decoders {
		return r.poolLimit
	}
	return r.chipset.Decoders
}

// SetDecoderLimit degrades the decoder pool to n concurrent decodes
// (n <= 0 or n >= the chipset pool restores the full pool). Decodes
// already in flight finish on their decoders; the limit only gates new
// lock-ons, so InUse may transiently exceed a freshly lowered limit while
// the pool drains. Fault injection uses this to model partial decoder
// failure without detaching the radio.
func (r *Radio) SetDecoderLimit(n int) {
	if n < 0 {
		n = 0
	}
	r.poolLimit = n
}

// FreeDecoders returns the number of idle decoders under the effective
// pool limit (never negative, even while a lowered limit drains).
func (r *Radio) FreeDecoders() int {
	free := r.DecoderLimit() - r.busy
	if free < 0 {
		free = 0
	}
	return free
}

// ForeignInUse returns how many occupied decoders are currently decoding
// packets from other networks. A real gateway cannot know this (that is
// the decode-then-filter problem); the simulator exposes it so that the
// metrics layer can attribute decoder contention to inter- vs
// intra-network causes (Figure 4).
func (r *Radio) ForeignInUse() int { return r.busyForeign }

// decodeTask is one occupied decoder: the packet's metadata and judge,
// held from lock-on to the decode-completion event at Meta.End. Tasks are
// pooled per radio — the completion closure is created once per task and
// captures only the task pointer, so the dispatcher's accept path stops
// allocating once the pool has warmed up to the radio's peak occupancy.
type decodeTask struct {
	r       *Radio
	meta    Meta
	judge   Judge
	foreign bool

	next *decodeTask
	fn   func()
}

func (r *Radio) newTask() *decodeTask {
	k := r.taskFree
	if k == nil {
		k = &decodeTask{r: r}
		k.fn = k.finish
		return k
	}
	r.taskFree = k.next
	k.next = nil
	return k
}

// finish is the decode-completion event at meta.End: release the decoder,
// ask the judge for the physical-layer verdict, filter by sync word, and
// publish the result.
func (k *decodeTask) finish() {
	r := k.r
	r.busy--
	if k.foreign {
		r.busyForeign--
	}
	res := Result{Meta: k.meta}
	switch k.judge() {
	case VerdictChannelCollision:
		r.stats.Collision++
		res.Reason = DropChannelContention
	case VerdictWeakSignal:
		r.stats.Weak++
		res.Reason = DropWeakSignal
	default:
		// Decoded successfully — only now can the sync word be read.
		// Re-read the current config: a reconfiguration while the packet
		// was decoding changes which sync word the gateway filters on.
		if k.meta.Network != r.cfg.Sync {
			r.stats.Foreign++
			res.Reason = DropForeignNetwork
		} else {
			r.stats.Delivered++
			res.Reason = DropNone
		}
	}
	r.emit(res)
	k.judge = nil
	k.meta = Meta{}
	k.next = r.taskFree
	r.taskFree = k
}

// LockOn is called by the medium when a packet's preamble completes on a
// chain of this radio. It implements the FCFS dispatcher: if a decoder is
// free it is held until m.End and the judge decides the decode outcome;
// otherwise the packet is dropped immediately as decoder contention.
// It reports whether a decoder was allocated — when false, the judge will
// never be called and the caller may reclaim anything it captured.
//
// LockOn must be called at simulation time m.LockOn.
func (r *Radio) LockOn(m Meta, judge Judge) bool {
	r.stats.TotalSeen++
	if r.busy >= r.DecoderLimit() {
		r.stats.NoDecoder++
		r.emit(Result{Meta: m, Reason: DropNoDecoder})
		return false
	}
	r.busy++
	foreign := m.Network != r.cfg.Sync
	if foreign {
		r.busyForeign++
	}
	if r.busy > r.stats.PeakInUse {
		r.stats.PeakInUse = r.busy
	}
	k := r.newTask()
	k.meta, k.judge, k.foreign = m, judge, foreign
	r.sim.At(m.End, k.fn)
	return true
}

func (r *Radio) emit(res Result) { r.Results.Publish(res) }

// DetectOverlapThreshold is the minimum spectral overlap between a packet
// and an Rx chain's channel for the packet detector to lock on at all.
// Below this, the front-end's frequency selectivity truncates the signal
// before the pipeline (§4.2.4) — the physical basis of Strategy ⑧.
// The default 0.75 is consistent with the paper's finding that >30%
// misalignment (<70% overlap) reliably isolates coexisting networks.
const DetectOverlapThreshold = 0.75

// Detects reports which configured chain (if any) will detect a packet on
// channel ch: the chain with the highest spectral overlap at or above
// DetectOverlapThreshold.
func (r *Radio) Detects(ch region.Channel) (chain int, ok bool) {
	best := -1
	bestOv := 0.0
	for i, c := range r.cfg.Channels {
		if ov := ch.Overlap(c); ov >= DetectOverlapThreshold && ov > bestOv {
			best, bestOv = i, ov
		}
	}
	return best, best >= 0
}
