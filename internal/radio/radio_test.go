package radio

import (
	"testing"

	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/region"
)

func testConfig(n int) Config {
	chs := make([]region.Channel, n)
	for i := range chs {
		chs[i] = region.Testbed.Channel(i)
	}
	return Config{Channels: chs, Sync: lora.SyncPublic}
}

func okJudge() DecodeVerdict { return VerdictOK }

func meta(id int64, lock, end des.Time) Meta {
	return Meta{
		ID: id, Network: lora.SyncPublic, SF: lora.SF7,
		Channel: region.Testbed.Channel(int(id) % 8),
		LockOn:  lock, End: end,
	}
}

func TestDecoderPoolLimit(t *testing.T) {
	// 20 concurrent packets into a 16-decoder SX1302: exactly 16 received
	// in lock-on order, 4 dropped as decoder contention (Figure 3b).
	sim := des.New(1)
	r, err := New(sim, SX1302, testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	var delivered, dropped []int64
	r.Results.Subscribe(func(res Result) {
		switch res.Reason {
		case DropNone:
			delivered = append(delivered, res.Meta.ID)
		case DropNoDecoder:
			dropped = append(dropped, res.Meta.ID)
		}
	})
	for i := 0; i < 20; i++ {
		m := meta(int64(i), des.Time(1000+i), des.Time(100_000))
		sim.At(m.LockOn, func() { r.LockOn(m, okJudge) })
	}
	sim.Run()
	if len(delivered) != 16 || len(dropped) != 4 {
		t.Fatalf("delivered=%d dropped=%d, want 16/4", len(delivered), len(dropped))
	}
	for i, id := range delivered {
		if id != int64(i) {
			t.Errorf("FCFS violated: delivered[%d] = %d", i, id)
		}
	}
	for i, id := range dropped {
		if id != int64(16+i) {
			t.Errorf("late packets must drop: dropped[%d] = %d", i, id)
		}
	}
}

func TestDecoderReleaseAllowsLaterPackets(t *testing.T) {
	sim := des.New(1)
	r, _ := New(sim, SX1308, testConfig(8)) // 8 decoders
	got := map[int64]DropReason{}
	r.Results.Subscribe(func(res Result) { got[res.Meta.ID] = res.Reason })
	// 8 packets occupy all decoders until t=50ms.
	for i := 0; i < 8; i++ {
		m := meta(int64(i), 1000, 50_000)
		sim.At(m.LockOn, func() { r.LockOn(m, okJudge) })
	}
	// A 9th locking on at t=10ms is dropped; a 10th at t=60ms succeeds.
	m9 := meta(9, 10_000, 70_000)
	sim.At(m9.LockOn, func() { r.LockOn(m9, okJudge) })
	m10 := meta(10, 60_000, 90_000)
	sim.At(m10.LockOn, func() { r.LockOn(m10, okJudge) })
	sim.Run()
	if got[9] != DropNoDecoder {
		t.Errorf("packet 9 = %v, want decoder-contention", got[9])
	}
	if got[10] != DropNone {
		t.Errorf("packet 10 = %v, want delivered after release", got[10])
	}
	if r.InUse() != 0 {
		t.Errorf("all decoders must be released, in use: %d", r.InUse())
	}
}

// TestFCFSIgnoresSNR reproduces Figure 3c: the dispatcher does not
// prioritize high-SNR packets — order alone decides.
func TestFCFSIgnoresSNR(t *testing.T) {
	sim := des.New(1)
	r, _ := New(sim, SX1302, testConfig(8))
	var dropped []int64
	r.Results.Subscribe(func(res Result) {
		if res.Reason == DropNoDecoder {
			dropped = append(dropped, res.Meta.ID)
		}
	})
	for i := 0; i < 20; i++ {
		m := meta(int64(i), des.Time(1000+i), des.Time(100_000))
		if i >= 16 {
			m.SNRdB = 20 // late packets are *strong*
		} else {
			m.SNRdB = -10
		}
		sim.At(m.LockOn, func() { r.LockOn(m, okJudge) })
	}
	sim.Run()
	if len(dropped) != 4 {
		t.Fatalf("dropped = %v", dropped)
	}
	for _, id := range dropped {
		if id < 16 {
			t.Errorf("strong late packet must still drop, got early %d dropped", id)
		}
	}
}

// TestForeignPacketsConsumeDecoders reproduces Figure 3e/f: packets from a
// coexisting network are filtered only after decode, so they occupy
// decoders and displace own-network packets.
func TestForeignPacketsConsumeDecoders(t *testing.T) {
	sim := des.New(1)
	r, _ := New(sim, SX1302, testConfig(8))
	var ownDelivered, ownDropped, foreign int
	r.Results.Subscribe(func(res Result) {
		switch res.Reason {
		case DropNone:
			ownDelivered++
		case DropNoDecoder:
			if res.Meta.Network == lora.SyncPublic {
				ownDropped++
			}
		case DropForeignNetwork:
			foreign++
		}
	})
	// 10 foreign packets lock on first, then 10 own packets.
	for i := 0; i < 20; i++ {
		m := meta(int64(i), des.Time(1000+i), des.Time(100_000))
		if i < 10 {
			m.Network = lora.SyncPrivate
		}
		sim.At(m.LockOn, func() { r.LockOn(m, okJudge) })
	}
	sim.Run()
	// 16 decoders: 10 foreign + first 6 own get decoders; 4 own dropped.
	if foreign != 10 {
		t.Errorf("foreign filtered = %d, want 10", foreign)
	}
	if ownDelivered != 6 || ownDropped != 4 {
		t.Errorf("own delivered/dropped = %d/%d, want 6/4", ownDelivered, ownDropped)
	}
}

func TestJudgeVerdictsMapToReasons(t *testing.T) {
	sim := des.New(1)
	r, _ := New(sim, SX1302, testConfig(8))
	got := map[int64]DropReason{}
	r.Results.Subscribe(func(res Result) { got[res.Meta.ID] = res.Reason })
	verdicts := map[int64]DecodeVerdict{1: VerdictOK, 2: VerdictChannelCollision, 3: VerdictWeakSignal}
	for id, v := range verdicts {
		id, v := id, v
		m := meta(id, 1000, 2000)
		sim.At(m.LockOn, func() { r.LockOn(m, func() DecodeVerdict { return v }) })
	}
	sim.Run()
	if got[1] != DropNone || got[2] != DropChannelContention || got[3] != DropWeakSignal {
		t.Errorf("verdict mapping wrong: %v", got)
	}
	st := r.Stats()
	if st.Delivered != 1 || st.Collision != 1 || st.Weak != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	// Too many channels for the chipset.
	if err := testConfig(8).Validate(SX1301); err != nil {
		t.Errorf("8 channels fit SX1301: %v", err)
	}
	bad := testConfig(8)
	bad.Channels = append(bad.Channels, region.Testbed.Channel(0))
	if err := bad.Validate(SX1301); err == nil {
		t.Error("9 channels must not fit 8 chains")
	}
	// Span limit: AS923 ch0 and a channel 2 MHz away exceed 1.6 MHz span.
	wide := Config{Sync: lora.SyncPublic, Channels: []region.Channel{
		region.Testbed.Channel(0),
		{Center: region.Testbed.Channel(0).Center + 2_000_000, Bandwidth: lora.BW125},
	}}
	if err := wide.Validate(SX1302); err == nil {
		t.Error("2 MHz span must exceed SX1302's 1.6 MHz limit")
	}
	if err := wide.Validate(SX1303); err != nil {
		t.Errorf("2 MHz span fits SX1303's 3.2 MHz: %v", err)
	}
	// Empty config invalid.
	if err := (Config{}).Validate(SX1302); err == nil {
		t.Error("empty channel set must be invalid")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	sim := des.New(1)
	if _, err := New(sim, SX1301, testConfig(9)); err == nil {
		t.Error("New must validate the configuration")
	}
}

func TestReconfigure(t *testing.T) {
	sim := des.New(1)
	r, _ := New(sim, SX1302, testConfig(8))
	two := testConfig(2)
	if err := r.Reconfigure(two); err != nil {
		t.Fatal(err)
	}
	if len(r.Config().Channels) != 2 {
		t.Error("reconfigure must replace channels")
	}
	if err := r.Reconfigure(testConfig(9)); err == nil {
		t.Error("invalid reconfigure must fail")
	}
	if len(r.Config().Channels) != 2 {
		t.Error("failed reconfigure must not change the config")
	}
}

func TestDetects(t *testing.T) {
	sim := des.New(1)
	r, _ := New(sim, SX1302, testConfig(4)) // chains on AS923 ch0..ch3
	if chain, ok := r.Detects(region.Testbed.Channel(2)); !ok || chain != 2 {
		t.Errorf("aligned channel: chain=%d ok=%v", chain, ok)
	}
	if _, ok := r.Detects(region.Testbed.Channel(6)); ok {
		t.Error("unconfigured channel must not be detected")
	}
	// 60% overlap (50 kHz shift) is below the 75% detect threshold:
	// frequency selectivity truncates the packet before the pipeline.
	shifted := region.Channel{
		Center:    region.Testbed.Channel(1).Center + 50_000,
		Bandwidth: lora.BW125,
	}
	if _, ok := r.Detects(shifted); ok {
		t.Error("60 percent overlap packet must be filtered by frequency selectivity")
	}
	// 80% overlap (25 kHz shift) locks on.
	slight := region.Channel{
		Center:    region.Testbed.Channel(1).Center + 25_000,
		Bandwidth: lora.BW125,
	}
	if chain, ok := r.Detects(slight); !ok || chain != 1 {
		t.Errorf("80%%-overlap packet should lock on chain 1, got %d,%v", chain, ok)
	}
}

func TestTable4Capacities(t *testing.T) {
	// Table 4: practical capacity = decoders; theoretical = chains × 6.
	want := map[string]struct{ practical, theory int }{
		"LPS8N":       {16, 48},
		"RAK7246G":    {8, 48},
		"RAK7268CV2":  {16, 48},
		"RAK7289CV2":  {32, 96},
		"Wirnet iBTS": {8, 48},
	}
	for _, m := range Models {
		w, ok := want[m.Model]
		if !ok {
			continue
		}
		if got := m.PracticalCapacity(); got != w.practical {
			t.Errorf("%s practical = %d, want %d", m.Model, got, w.practical)
		}
		if got := m.TheoreticalCapacity(); got != w.theory {
			t.Errorf("%s theoretical = %d, want %d", m.Model, got, w.theory)
		}
		if m.PracticalCapacity() >= m.TheoreticalCapacity() {
			t.Errorf("%s: no COTS gateway has enough decoders for its spectrum", m.Model)
		}
	}
}

func TestPeakInUseStat(t *testing.T) {
	sim := des.New(1)
	r, _ := New(sim, SX1302, testConfig(8))
	for i := 0; i < 5; i++ {
		m := meta(int64(i), 1000, 2000)
		sim.At(m.LockOn, func() { r.LockOn(m, okJudge) })
	}
	sim.Run()
	if st := r.Stats(); st.PeakInUse != 5 || st.TotalSeen != 5 {
		t.Errorf("stats = %+v, want peak 5 seen 5", st)
	}
	r.ResetStats()
	if r.Stats().TotalSeen != 0 {
		t.Error("ResetStats must clear counters")
	}
}

func TestDropReasonStrings(t *testing.T) {
	for r := DropNone; r <= DropForeignNetwork; r++ {
		if r.String() == "" {
			t.Errorf("reason %d has no string", int(r))
		}
	}
	if DropReason(99).String() == "" {
		t.Error("unknown reason must format")
	}
}
