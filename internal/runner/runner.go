// Package runner fans independent experiment cells across CPU cores with
// deterministic result assembly.
//
// The multi-cell experiments (Figures 4, 12–15, 17, 21 and the city144
// workloads) sweep a parameter grid where every cell constructs its own
// des.Sim and medium — they share no state, so they are embarrassingly
// parallel. RunCells executes such a grid on a worker pool sized to
// GOMAXPROCS while keeping the observable result identical to a serial
// loop: each cell writes only to its own index, so assembly order — and
// therefore every emitted table row and note — is the submission order
// regardless of which worker finished first.
//
// Determinism contract: fn(i) must derive all randomness from its own
// inputs (seed, index) and must not touch state shared across indices.
// Every des.Sim-based cell in this repository satisfies this by
// construction (a Sim seeds its own rand streams).
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the fan-out; 0 means GOMAXPROCS.
var maxWorkers atomic.Int32

// SetMaxWorkers caps the worker-pool size of subsequent RunCells calls
// and returns the previous setting. k = 1 forces serial execution (the
// baseline the determinism tests compare against), k = 0 restores the
// default (GOMAXPROCS at call time).
func SetMaxWorkers(k int) int {
	if k < 0 {
		k = 0
	}
	return int(maxWorkers.Swap(int32(k)))
}

// MaxWorkers reports the configured cap (0 = GOMAXPROCS).
func MaxWorkers() int { return int(maxWorkers.Load()) }

func workersFor(n int) int {
	w := int(maxWorkers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// cellPanic carries a recovered cell panic to the submitting goroutine.
type cellPanic struct {
	cell  int
	val   any
	stack []byte
}

func (p *cellPanic) String() string {
	return fmt.Sprintf("runner: cell %d panicked: %v\n%s", p.cell, p.val, p.stack)
}

// RunCells executes fn(0) … fn(n-1) across the worker pool and returns
// when all cells have finished. Cells are handed out dynamically (an
// atomic cursor), so a slow cell never blocks the remaining workers.
//
// If one or more cells panic, RunCells waits for the rest to finish and
// re-panics with the lowest panicking index — deterministic even when
// several cells fail in racing order.
func RunCells(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := workersFor(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstPC *cellPanic
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if pc := runCell(i, fn); pc != nil {
					mu.Lock()
					if firstPC == nil || pc.cell < firstPC.cell {
						firstPC = pc
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if firstPC != nil {
		panic(firstPC.String())
	}
}

func runCell(i int, fn func(int)) (pc *cellPanic) {
	defer func() {
		if r := recover(); r != nil {
			pc = &cellPanic{cell: i, val: r, stack: debug.Stack()}
		}
	}()
	fn(i)
	return nil
}

// Map runs fn over [0, n) on the worker pool and returns the results in
// submission order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	RunCells(n, func(i int) { out[i] = fn(i) })
	return out
}

// Map2 is Map for cells with two results (e.g. a stat plus a latency).
func Map2[A, B any](n int, fn func(i int) (A, B)) ([]A, []B) {
	as := make([]A, n)
	bs := make([]B, n)
	RunCells(n, func(i int) { as[i], bs[i] = fn(i) })
	return as, bs
}
