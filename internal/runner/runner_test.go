package runner

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/alphawan/alphawan/internal/des"
)

func withWorkers(t *testing.T, k int) {
	t.Helper()
	prev := SetMaxWorkers(k)
	t.Cleanup(func() { SetMaxWorkers(prev) })
}

func TestMapPreservesSubmissionOrder(t *testing.T) {
	withWorkers(t, 8)
	got := Map(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestSerialAndParallelAgree(t *testing.T) {
	// Each cell runs its own deterministic Sim; the assembled results must
	// not depend on the worker count.
	cell := func(i int) int64 {
		s := des.New(int64(i))
		var acc int64
		var tick func()
		n := 0
		tick = func() {
			acc += s.Rand().Int63() % 1000
			if n++; n < 50 {
				s.After(des.Time(1+s.Rand().Intn(100)), tick)
			}
		}
		s.At(0, tick)
		s.Run()
		return acc
	}
	withWorkers(t, 1)
	serial := Map(32, cell)
	SetMaxWorkers(7)
	parallel := Map(32, cell)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestStressMoreCellsThanWorkers(t *testing.T) {
	// 4 workers, 500 cells: every cell must run exactly once.
	withWorkers(t, 4)
	var ran [500]atomic.Int32
	var inFlight, peak atomic.Int32
	RunCells(len(ran), func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		ran[i].Add(1)
		inFlight.Add(-1)
	})
	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("cell %d ran %d times", i, n)
		}
	}
	if peak.Load() > 4 {
		t.Errorf("peak concurrency %d exceeded the 4-worker cap", peak.Load())
	}
}

func TestPanicPropagatesLowestIndex(t *testing.T) {
	withWorkers(t, 8)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the cell panic to propagate")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "cell 3 panicked: boom 3") {
			t.Fatalf("panic = %v, want lowest failing cell 3", r)
		}
	}()
	RunCells(64, func(i int) {
		if i%2 == 1 { // cells 3, 5, 7, … fail; 3 must win deterministically
			if i >= 3 {
				panic("boom " + string(rune('0'+i%10)))
			}
		}
	})
}

func TestSerialPathPanicsDirectly(t *testing.T) {
	withWorkers(t, 1)
	defer func() {
		if r := recover(); r != "direct" {
			t.Fatalf("serial panic = %v, want %q", r, "direct")
		}
	}()
	RunCells(4, func(i int) {
		if i == 2 {
			panic("direct")
		}
	})
}

func TestZeroAndNegativeCells(t *testing.T) {
	RunCells(0, func(int) { t.Fatal("must not run") })
	RunCells(-3, func(int) { t.Fatal("must not run") })
	if got := Map(0, func(int) int { return 1 }); len(got) != 0 {
		t.Errorf("Map(0) = %v", got)
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(3)
	defer SetMaxWorkers(prev)
	if MaxWorkers() != 3 {
		t.Errorf("MaxWorkers = %d, want 3", MaxWorkers())
	}
	if SetMaxWorkers(-5) != 3 {
		t.Error("SetMaxWorkers must return the previous cap")
	}
	if MaxWorkers() != 0 {
		t.Error("negative caps must clamp to the GOMAXPROCS default")
	}
	if w := workersFor(1000); w != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS", w)
	}
}

func TestMap2(t *testing.T) {
	withWorkers(t, 5)
	as, bs := Map2(10, func(i int) (int, string) {
		return i, strings.Repeat("x", i)
	})
	for i := range as {
		if as[i] != i || len(bs[i]) != i {
			t.Fatalf("Map2[%d] = (%d, %q)", i, as[i], bs[i])
		}
	}
}
