package tabulate

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 22.5)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "alpha  1") {
		t.Errorf("row = %q", lines[3])
	}
	if !strings.Contains(lines[4], "22.50") {
		t.Errorf("float row = %q", lines[4])
	}
}

func TestFloatFormatting(t *testing.T) {
	if formatFloat(3.0) != "3" {
		t.Error("integral floats render without decimals")
	}
	if formatFloat(3.14159) != "3.14" {
		t.Error("floats render with 2 decimals")
	}
}

func TestCSV(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("x,y", `q"uote`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"q\"\"uote\"\n"
	if csv != want {
		t.Errorf("csv = %q, want %q", csv, want)
	}
}

func TestRows(t *testing.T) {
	tb := New("", "a")
	if tb.Rows() != 0 {
		t.Error("empty")
	}
	tb.AddRow(1)
	if tb.Rows() != 1 {
		t.Error("one row")
	}
}
