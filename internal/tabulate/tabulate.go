// Package tabulate renders experiment results as aligned plain-text
// tables and CSV — the output format of cmd/alphawan-sim and the
// benchmark harness.
package tabulate

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// New creates a table with a title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
