// Package adr implements the standard LoRaWAN Adaptive Data Rate
// algorithm as deployed by ChirpStack/TTN: the network server tracks the
// maximum SNR of a device's recent uplinks and steps the data rate up /
// transmit power down while the link margin allows.
//
// The paper examines this algorithm in §4.2.3 (Strategy ⑤): it shrinks
// cells effectively (7 → 2 gateways per user, Figure 6a–c) but skews the
// network toward DR5 (>90% of local users, Figure 6d), starving the slow
// data rates and capping per-cell capacity — which motivates AlphaWAN's
// joint contention-aware planning (Strategy ⑦).
package adr

import (
	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/phy"
)

// HistorySize is the number of recent uplinks considered (LoRaWAN
// specification: 20).
const HistorySize = 20

// DefaultInstallationMargin is the SNR headroom (dB) the server reserves
// for fading (ChirpStack default 10 dB... the spec recommends 10; 5 keeps
// parity with TTN's deployed default).
const DefaultInstallationMargin = 10.0

// StepMarginDB is the SNR gain assumed per DR step (≈2.5 dB between
// adjacent SFs; the standard algorithm uses 3).
const StepMarginDB = 3.0

// State is the per-device ADR state kept by the network server.
type State struct {
	snrs []float64 // ring of recent best-gateway SNRs
}

// Observe records the best-gateway SNR of one uplink.
func (s *State) Observe(snrDB float64) {
	s.snrs = append(s.snrs, snrDB)
	if len(s.snrs) > HistorySize {
		s.snrs = s.snrs[len(s.snrs)-HistorySize:]
	}
}

// Samples returns how many uplinks have been observed (capped at history).
func (s *State) Samples() int { return len(s.snrs) }

// MaxSNR returns the maximum observed SNR, or false before any uplink.
func (s *State) MaxSNR() (float64, bool) {
	if len(s.snrs) == 0 {
		return 0, false
	}
	m := s.snrs[0]
	for _, v := range s.snrs[1:] {
		if v > m {
			m = v
		}
	}
	return m, true
}

// Decision is the parameter update ADR issues to a device.
type Decision struct {
	DR      lora.DR
	TXPower uint8 // power index (phy.TXPowerIndexDBm)
	Change  bool  // whether anything differs from the current settings
}

// Compute runs the standard algorithm for a device currently at (dr,
// txPower index). It returns the new settings.
//
// margin = maxSNR − demodFloor(currentDR) − installationMargin
// steps  = floor(margin / 3): first raise DR to DR5, then lower power.
// Negative steps raise power back up (never lower the DR — the standard
// algorithm recovers data rate only via ADRACKReq, which the simulator's
// long experiments trigger rarely enough to ignore).
func Compute(s *State, dr lora.DR, txPower uint8, installationMargin float64) Decision {
	d := Decision{DR: dr, TXPower: txPower}
	maxSNR, ok := s.MaxSNR()
	if !ok {
		return d
	}
	margin := maxSNR - lora.DemodFloorSNR(dr.SF()) - installationMargin
	steps := int(margin / StepMarginDB)

	for steps > 0 && d.DR < lora.DR5 {
		d.DR++
		steps--
	}
	for steps > 0 && d.TXPower < phy.NumTXPowers-1 {
		d.TXPower++
		steps--
	}
	for steps < 0 && d.TXPower > 0 {
		d.TXPower--
		steps++
	}
	d.Change = d.DR != dr || d.TXPower != txPower
	return d
}
