package adr

import (
	"testing"
	"testing/quick"

	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/phy"
)

func TestObserveRingCaps(t *testing.T) {
	var s State
	for i := 0; i < 50; i++ {
		s.Observe(float64(i))
	}
	if s.Samples() != HistorySize {
		t.Errorf("samples = %d, want %d", s.Samples(), HistorySize)
	}
	if m, _ := s.MaxSNR(); m != 49 {
		t.Errorf("max = %v, want 49 (latest window)", m)
	}
}

func TestMaxSNREmptyState(t *testing.T) {
	var s State
	if _, ok := s.MaxSNR(); ok {
		t.Error("empty state must report no SNR")
	}
	d := Compute(&s, lora.DR0, 4, DefaultInstallationMargin)
	if d.Change {
		t.Error("no observations → no change")
	}
}

func TestStrongLinkClimbsToDR5(t *testing.T) {
	// A strong link (+5 dB SNR) at DR0: margin = 5 - (-20) - 10 = 15 dB →
	// 5 steps: DR0 → DR5. This is the aggressive DR5 skew of Figure 6d.
	var s State
	s.Observe(5)
	d := Compute(&s, lora.DR0, 0, DefaultInstallationMargin)
	if d.DR != lora.DR5 {
		t.Errorf("DR = %v, want DR5", d.DR)
	}
	if !d.Change {
		t.Error("change flag must be set")
	}
}

func TestVeryStrongLinkAlsoDropsPower(t *testing.T) {
	// +20 dB at DR0: margin = 30 dB → 10 steps: 5 to reach DR5, 5 into
	// power reduction.
	var s State
	s.Observe(20)
	d := Compute(&s, lora.DR0, 0, DefaultInstallationMargin)
	if d.DR != lora.DR5 {
		t.Errorf("DR = %v, want DR5", d.DR)
	}
	if d.TXPower != 5 {
		t.Errorf("power index = %d, want 5", d.TXPower)
	}
	if phy.TXPowerIndexDBm(d.TXPower) != 10 {
		t.Errorf("power = %v dBm, want 10", phy.TXPowerIndexDBm(d.TXPower))
	}
}

func TestWeakLinkRaisesPower(t *testing.T) {
	// A device at DR3 with power index 4 whose link degraded: negative
	// steps raise power (lower the index) but never lower the DR.
	var s State
	s.Observe(-15) // DR3 floor is -12.5: margin = -12.5 → -5 steps
	d := Compute(&s, lora.DR3, 4, DefaultInstallationMargin)
	if d.DR != lora.DR3 {
		t.Errorf("DR must not fall, got %v", d.DR)
	}
	if d.TXPower != 0 {
		t.Errorf("power index = %d, want 0 (full power)", d.TXPower)
	}
}

func TestBorderlineLinkUnchanged(t *testing.T) {
	// Margin within one step: nothing to do.
	var s State
	s.Observe(lora.DemodFloorSNR(lora.SF10) + DefaultInstallationMargin + 1)
	d := Compute(&s, lora.DR2, 3, DefaultInstallationMargin)
	if d.Change {
		t.Errorf("borderline link must keep settings, got %+v", d)
	}
}

func TestComputeIdempotentAtDR5MinPower(t *testing.T) {
	var s State
	s.Observe(40)
	d := Compute(&s, lora.DR5, phy.NumTXPowers-1, DefaultInstallationMargin)
	if d.Change {
		t.Errorf("already at the limits: %+v", d)
	}
}

func TestComputeMonotoneInSNR(t *testing.T) {
	f := func(raw int8) bool {
		snr := float64(raw) / 4
		var s1, s2 State
		s1.Observe(snr)
		s2.Observe(snr + 3)
		d1 := Compute(&s1, lora.DR0, 4, DefaultInstallationMargin)
		d2 := Compute(&s2, lora.DR0, 4, DefaultInstallationMargin)
		if d2.DR < d1.DR {
			return false
		}
		// Power index only starts rising after DR maxes out.
		return d1.DR < lora.DR5 || d2.TXPower >= d1.TXPower
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecisionsNeverExceedBounds(t *testing.T) {
	f := func(raw int8, drRaw, pwRaw uint8) bool {
		var s State
		s.Observe(float64(raw))
		d := Compute(&s, lora.DR(drRaw%6), pwRaw%phy.NumTXPowers, DefaultInstallationMargin)
		return d.DR.Valid() && d.TXPower < phy.NumTXPowers
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
