package gateway

import (
	"testing"

	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/medium"
	"github.com/alphawan/alphawan/internal/phy"
	"github.com/alphawan/alphawan/internal/radio"
	"github.com/alphawan/alphawan/internal/region"
)

func env() phy.Environment {
	e := phy.Urban(1)
	e.ShadowSigma = 0
	return e
}

func cfg(n int) radio.Config {
	chs := make([]region.Channel, n)
	for i := range chs {
		chs[i] = region.AS923.Channel(i)
	}
	return radio.Config{Channels: chs, Sync: lora.SyncPublic}
}

func model() radio.GatewayModel { return radio.Models[3] } // RAK7268CV2 / SX1302

func send(med *medium.Medium, ch int) {
	med.Transmit(medium.Transmission{
		Node: 1, Network: 1, Sync: lora.SyncPublic,
		Channel: region.AS923.Channel(ch), DR: lora.DR5,
		PayloadLen: 13, PowerDBm: 14, Pos: phy.Pt(100, 0),
	})
}

func TestUplinkForwarding(t *testing.T) {
	sim := des.New(1)
	med := medium.New(sim, env())
	gw, err := New(sim, med, 7, model(), phy.Pt(0, 0), phy.Antenna{}, cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	var ups []Uplink
	gw.Uplinks.Subscribe(func(u Uplink) { ups = append(ups, u) })
	sim.At(0, func() { send(med, 0) })
	sim.Run()
	if len(ups) != 1 {
		t.Fatalf("uplinks = %d, want 1", len(ups))
	}
	u := ups[0]
	if u.GW != gw || u.TX.Node != 1 || u.Meta.SNRdB == 0 {
		t.Errorf("uplink = %+v", u)
	}
	if u.At != u.TX.End {
		t.Errorf("uplink forwarded at %v, want decode completion %v", u.At, u.TX.End)
	}
}

func TestApplyConfigReboot(t *testing.T) {
	sim := des.New(1)
	med := medium.New(sim, env())
	gw, _ := New(sim, med, 1, model(), phy.Pt(0, 0), phy.Antenna{}, cfg(8))
	var ups int
	gw.Uplinks.Subscribe(func(Uplink) { ups++ })

	sim.At(des.Second, func() {
		upAt, err := gw.ApplyConfig(cfg(2))
		if err != nil {
			t.Error(err)
		}
		if want := des.Time(des.Second) + DefaultRebootTime; upAt != want {
			t.Errorf("upAt = %v, want %v", upAt, want)
		}
		if gw.Online() {
			t.Error("gateway must be offline during reboot")
		}
	})
	// During the reboot the gateway hears nothing.
	sim.At(2*des.Second, func() { send(med, 0) })
	// After the reboot it receives on the new 2-channel config.
	sim.At(8*des.Second, func() { send(med, 0) })
	// But no longer on channel 5 (dropped from the config).
	sim.At(9*des.Second, func() { send(med, 5) })
	sim.Run()
	if ups != 1 {
		t.Errorf("uplinks = %d, want exactly the post-reboot packet on ch0", ups)
	}
	if !gw.Online() {
		t.Error("gateway must come back online")
	}
	if gw.Reboots() != 1 {
		t.Errorf("reboots = %d, want 1", gw.Reboots())
	}
}

// TestReplanToDisjointChannelsUpdatesMediumIndex verifies the
// ConfigEvents → Medium.ReindexPort wiring: a mid-run replan onto
// spectrum no port monitored at setup must make the gateway reachable
// there (the medium's interest index is rebuilt from the gateway's own
// config event), and the abandoned channels must go silent.
func TestReplanToDisjointChannelsUpdatesMediumIndex(t *testing.T) {
	sim := des.New(1)
	med := medium.New(sim, env())
	gw, _ := New(sim, med, 1, model(), phy.Pt(0, 0), phy.Antenna{}, cfg(8))
	var ups []Uplink
	gw.Uplinks.Subscribe(func(u Uplink) { ups = append(ups, u) })
	moved := region.Channel{Center: region.MHz(925.0), Bandwidth: lora.BW125}

	sim.At(des.Second, func() {
		cfg := radio.Config{Channels: []region.Channel{moved}, Sync: lora.SyncPublic}
		if _, err := gw.ApplyConfig(cfg); err != nil {
			t.Error(err)
		}
	})
	// After the reboot: a packet on the moved channel must be received —
	// possible only if the interest index picked up the new plan.
	sim.At(8*des.Second, func() {
		med.Transmit(medium.Transmission{
			Node: 2, Network: 1, Sync: lora.SyncPublic,
			Channel: moved, DR: lora.DR5,
			PayloadLen: 13, PowerDBm: 14, Pos: phy.Pt(100, 0),
		})
	})
	// The abandoned CH0 must go silent.
	sim.At(9*des.Second, func() { send(med, 0) })
	sim.Run()
	if len(ups) != 1 || ups[0].TX.Node != 2 {
		t.Fatalf("uplinks = %+v, want exactly the moved-channel packet from node 2", ups)
	}
}

func TestApplyConfigValidates(t *testing.T) {
	sim := des.New(1)
	med := medium.New(sim, env())
	gw, _ := New(sim, med, 1, model(), phy.Pt(0, 0), phy.Antenna{}, cfg(8))
	bad := cfg(8)
	bad.Channels = append(bad.Channels, region.AS923.Channel(0))
	sim.At(0, func() {
		if _, err := gw.ApplyConfig(bad); err == nil {
			t.Error("invalid config must be rejected")
		}
		if !gw.Online() {
			t.Error("rejected config must not take the gateway down")
		}
	})
	sim.Run()
	if gw.Reboots() != 0 {
		t.Error("rejected config must not count as a reboot")
	}
}

func TestApplyConfigInstant(t *testing.T) {
	sim := des.New(1)
	med := medium.New(sim, env())
	gw, _ := New(sim, med, 1, model(), phy.Pt(0, 0), phy.Antenna{}, cfg(8))
	if err := gw.ApplyConfigInstant(cfg(4)); err != nil {
		t.Fatal(err)
	}
	if !gw.Online() || len(gw.Config().Channels) != 4 {
		t.Error("instant config must apply without downtime")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	sim := des.New(1)
	med := medium.New(sim, env())
	bad := cfg(8)
	bad.Channels = append(bad.Channels, region.AS923.Channel(0))
	if _, err := New(sim, med, 1, model(), phy.Pt(0, 0), phy.Antenna{}, bad); err == nil {
		t.Error("New must validate the config")
	}
}

func TestMultipleGatewaysHomogeneousSeeSamePackets(t *testing.T) {
	// §3.2: co-located homogeneous gateways receive the same early packets
	// and drop the same late ones — extra gateways add nothing.
	sim := des.New(1)
	med := medium.New(sim, env())
	var gws []*Gateway
	received := map[int]map[int64]bool{}
	for i := 0; i < 3; i++ {
		gw, err := New(sim, med, i, model(), phy.Pt(float64(i)*50, 0), phy.Antenna{}, cfg(8))
		if err != nil {
			t.Fatal(err)
		}
		i := i
		received[i] = map[int64]bool{}
		gw.Uplinks.Subscribe(func(u Uplink) { received[i][u.TX.ID] = true })
		gws = append(gws, gw)
	}
	// 24 concurrent DR5 packets across 8 channels (3 per channel would
	// collide, so give each an orthogonal DR triple).
	end := des.Time(2 * des.Second)
	id := 0
	for ch := 0; ch < 8; ch++ {
		for _, dr := range []lora.DR{lora.DR5, lora.DR4, lora.DR3} {
			ch, dr := ch, dr
			air := des.FromDuration(lora.DefaultParams(dr).Airtime(13))
			idd := medium.NodeID(id)
			sim.At(end-air, func() {
				med.Transmit(medium.Transmission{
					Node: idd, Network: 1, Sync: lora.SyncPublic,
					Channel: region.AS923.Channel(ch), DR: dr,
					PayloadLen: 13, PowerDBm: 14, Pos: phy.Pt(200+float64(idd), 100),
				})
			})
			id++
		}
	}
	sim.Run()
	// All three gateways must have received the *same* 16-packet subset.
	if len(received[0]) != 16 {
		t.Fatalf("gateway 0 received %d, want 16", len(received[0]))
	}
	for i := 1; i < 3; i++ {
		if len(received[i]) != len(received[0]) {
			t.Fatalf("gateway %d received %d, want %d", i, len(received[i]), len(received[0]))
		}
		for id := range received[0] {
			if !received[i][id] {
				t.Errorf("gateway %d missed packet %d that gateway 0 received", i, id)
			}
		}
	}
	_ = gws
}
