// Package gateway models a LoRaWAN gateway device: a radio attached to the
// medium plus the operational behaviours AlphaWAN manages — channel
// reconfiguration with reboot downtime (Figure 17's dominant latency term)
// and uplink forwarding toward the network server.
package gateway

import (
	"fmt"

	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/events"
	"github.com/alphawan/alphawan/internal/medium"
	"github.com/alphawan/alphawan/internal/phy"
	"github.com/alphawan/alphawan/internal/radio"
)

// DefaultRebootTime is the mean gateway reboot latency the paper measures
// (4.62 s, §5.3.3).
const DefaultRebootTime = des.Time(4_620_000)

// Uplink is a received packet as forwarded to the network server: the
// payload plus the receive metadata ChirpStack stores in its operational
// logs (receiving channel, timestamp, SNR — §4.3.3 "Log parser").
type Uplink struct {
	GW   *Gateway
	TX   *medium.Transmission
	Meta radio.Meta
	At   des.Time
}

// ConfigEvent reports a gateway configuration change: one event when the
// new channel plan is applied (Online=false while the gateway reboots)
// and one when the gateway is receiving again (Online=true). Instant
// applies publish a single Online event.
type ConfigEvent struct {
	GW     *Gateway
	Config radio.Config
	At     des.Time
	// UpAt is when the gateway finishes rebooting (equal to At for
	// instant applies).
	UpAt   des.Time
	Online bool
}

// Gateway is one gateway in a network.
type Gateway struct {
	ID    int
	Model radio.GatewayModel
	Pos   phy.Point

	sim  *des.Sim
	med  *medium.Medium
	port *medium.Port

	// RebootTime is how long a reconfiguration keeps the gateway offline.
	RebootTime des.Time

	// Uplinks publishes every successfully decoded own-network packet
	// (the backhaul toward the network server). Subscribers registered
	// before a packet's decode completes observe it.
	Uplinks events.Topic[Uplink]
	// ConfigEvents publishes reconfiguration lifecycle events (reboot
	// start, back online).
	ConfigEvents events.Topic[ConfigEvent]

	reboots int
}

// New creates a gateway, attaches its radio to the medium, and wires
// delivery forwarding. The antenna defaults to a 3 dBi omni unless ant is
// non-zero.
func New(sim *des.Sim, med *medium.Medium, id int, model radio.GatewayModel, pos phy.Point, ant phy.Antenna, cfg radio.Config) (*Gateway, error) {
	r, err := radio.New(sim, model.Chipset, cfg)
	if err != nil {
		return nil, fmt.Errorf("gateway %d: %w", id, err)
	}
	if ant == (phy.Antenna{}) {
		ant = phy.Omni(3)
	}
	g := &Gateway{
		ID: id, Model: model, Pos: pos,
		sim: sim, med: med, RebootTime: DefaultRebootTime,
	}
	g.port = med.Attach(r, pos, ant)
	med.WirePort(g.port)
	// Every reconfiguration changes which channels the port's radio
	// monitors, so the medium's interest index must be rebuilt before the
	// next transmission. Registered at construction so it runs before any
	// external ConfigEvents subscriber.
	g.ConfigEvents.Subscribe(func(ConfigEvent) {
		med.ReindexPort(g.port)
	})
	// Subscribed after WirePort, so the medium's delivery/drop topics
	// (and with them the metrics collector) run before the uplink is
	// forwarded toward the network server.
	g.port.Radio.Results.Subscribe(func(res radio.Result) {
		if res.Reason != radio.DropNone || g.Uplinks.Len() == 0 {
			return
		}
		if tx := med.LookupTX(res.Meta.ID); tx != nil {
			g.Uplinks.Publish(Uplink{GW: g, TX: tx, Meta: res.Meta, At: sim.Now()})
		}
	})
	return g, nil
}

// Port exposes the medium port (for experiment instrumentation).
func (g *Gateway) Port() *medium.Port { return g.port }

// Radio exposes the underlying radio.
func (g *Gateway) Radio() *radio.Radio { return g.port.Radio }

// Config returns the radio's current channel configuration.
func (g *Gateway) Config() radio.Config { return g.port.Radio.Config() }

// Online reports whether the gateway is currently receiving.
func (g *Gateway) Online() bool { return !g.port.Down() }

// Reboots returns how many reconfiguration reboots the gateway performed.
func (g *Gateway) Reboots() int { return g.reboots }

// ApplyConfig validates and installs a new channel configuration, taking
// the gateway offline for RebootTime (the paper's agents reboot gateways
// to apply updated settings, §5.3.3). The returned time is when the
// gateway is back online.
func (g *Gateway) ApplyConfig(cfg radio.Config) (upAt des.Time, err error) {
	if err := g.port.Radio.Reconfigure(cfg); err != nil {
		return 0, fmt.Errorf("gateway %d: %w", g.ID, err)
	}
	g.reboots++
	g.port.SetDown(true)
	upAt = g.sim.Now() + g.RebootTime
	g.ConfigEvents.Publish(ConfigEvent{GW: g, Config: cfg, At: g.sim.Now(), UpAt: upAt})
	g.sim.At(upAt, func() {
		g.port.SetDown(false)
		g.ConfigEvents.Publish(ConfigEvent{GW: g, Config: cfg, At: upAt, UpAt: upAt, Online: true})
	})
	return upAt, nil
}

// SetFaultOutage forces the gateway offline (or back online) for fault
// injection, attributing the downtime's drops to the episode id. Unlike
// ApplyConfig it changes no radio settings and publishes no ConfigEvent:
// a crashed backhaul or power loss does not reconfigure anything. A
// gateway already down (rebooting) stays down; the episode attribution
// takes over for the overlap.
func (g *Gateway) SetFaultOutage(down bool, episode int64) {
	if down {
		g.port.SetDownEpisode(episode)
		g.port.SetDown(true)
		return
	}
	g.port.SetDown(false)
}

// ApplyConfigInstant installs a configuration with no downtime — used to
// set up initial deployments before a run starts.
func (g *Gateway) ApplyConfigInstant(cfg radio.Config) error {
	if err := g.port.Radio.Reconfigure(cfg); err != nil {
		return err
	}
	now := g.sim.Now()
	g.ConfigEvents.Publish(ConfigEvent{GW: g, Config: cfg, At: now, UpAt: now, Online: true})
	return nil
}
