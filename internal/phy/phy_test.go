package phy

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/alphawan/alphawan/internal/lora"
)

func TestDistance(t *testing.T) {
	if got := (Pt(0, 0)).Distance(Pt(3, 4)); got != 5 {
		t.Errorf("distance = %v, want 5", got)
	}
}

func TestPathLossGrowsWithDistance(t *testing.T) {
	e := Urban(1)
	e.ShadowSigma = 0 // isolate the deterministic part
	gw := Pt(0, 0)
	last := -math.MaxFloat64
	for _, d := range []float64{50, 100, 200, 500, 1000, 2000} {
		pl := e.PathLoss(gw, Pt(d, 0))
		if pl <= last {
			t.Errorf("path loss must grow with distance: PL(%v)=%v ≤ %v", d, pl, last)
		}
		last = pl
	}
}

func TestPathLossSymmetric(t *testing.T) {
	e := Urban(7)
	f := func(ax, ay, bx, by int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		return math.Abs(e.PathLoss(a, b)-e.PathLoss(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShadowingDeterministic(t *testing.T) {
	e := Urban(3)
	a, b := Pt(10, 20), Pt(500, 700)
	if e.PathLoss(a, b) != e.PathLoss(a, b) {
		t.Error("same link must always see the same shadowing")
	}
	e2 := Urban(4)
	if e.PathLoss(a, b) == e2.PathLoss(a, b) {
		t.Error("different seeds should fade differently")
	}
}

func TestShadowingRoughlyNormal(t *testing.T) {
	e := Urban(5)
	var sum, sum2 float64
	n := 2000
	for i := 0; i < n; i++ {
		s := e.shadow(Pt(float64(i), 0), Pt(0, float64(i*3)))
		sum += s
		sum2 += s * s
	}
	mean := sum / float64(n)
	std := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean) > 0.1 {
		t.Errorf("shadow mean = %v, want ≈ 0", mean)
	}
	if std < 0.85 || std > 1.15 {
		t.Errorf("shadow std = %v, want ≈ 1", std)
	}
}

func TestTestbedSNRRange(t *testing.T) {
	// Appendix D: testbed link SNRs span about -15…+5 dB. With 14 dBm TX
	// the near links must clear DR5 and the far links must reach only the
	// slow rates.
	e := Urban(1)
	gw := Pt(1050, 800) // center of the 2.1 km × 1.6 km area
	near := e.SNRdB(Link{TXPowerDBm: 14, TXPos: Pt(1100, 820), RXPos: gw, RXAntenna: Omni(3)})
	far := e.SNRdB(Link{TXPowerDBm: 14, TXPos: Pt(0, 0), RXPos: gw, RXAntenna: Omni(3)})
	if near < 5 {
		t.Errorf("near link SNR = %.1f, want ≥ 5 (DR5 capable)", near)
	}
	if far > 0 || far < -25 {
		t.Errorf("edge link SNR = %.1f, want in (-25, 0)", far)
	}
}

func TestOmniGainIsotropic(t *testing.T) {
	a := Omni(3)
	for _, b := range []float64{0, 1, 2, 3, -2} {
		if a.Gain(b) != 3 {
			t.Errorf("omni gain at bearing %v = %v, want 3", b, a.Gain(b))
		}
	}
}

func TestDirectionalPattern(t *testing.T) {
	a := Directional12dBi(0)
	if got := a.Gain(0); got != 12 {
		t.Errorf("boresight gain = %v, want 12", got)
	}
	// At half beamwidth (30°): 3 dB down.
	half := a.Gain(30 * math.Pi / 180)
	if math.Abs(half-(12-3)) > 0.01 {
		t.Errorf("gain at half beamwidth = %v, want 9", half)
	}
	// Figure 7: off-steer attenuation between 14 and 40 dB.
	back := a.Gain(math.Pi)
	if att := 12 - back; att != 40 {
		t.Errorf("front-to-back attenuation = %v, want 40", att)
	}
	side := a.Gain(math.Pi / 2) // 90° off
	att := 12 - side
	if att < 14 || att > 40 {
		t.Errorf("90° attenuation = %v, want within the measured 14–40 dB band", att)
	}
}

// TestDirectionalStillReceives reproduces the Figure 7 conclusion: even
// packets attenuated by the full 40 dB front-to-back ratio can stay above
// the demodulation floor thanks to LoRa sensitivity, so directional
// antennas alone do not suppress decoder contention.
func TestDirectionalStillReceives(t *testing.T) {
	e := Urban(1)
	e.ShadowSigma = 0
	gw := Pt(0, 0)
	node := Pt(-300, 0) // directly behind the boresight (+x)
	l := Link{TXPowerDBm: 20, TXPos: node, RXPos: gw, RXAntenna: Directional12dBi(0)}
	snr := e.SNRdB(l)
	if snr < lora.DemodFloorSNR(lora.SF12) {
		t.Errorf("behind-antenna SNR = %.1f, should still clear the SF12 floor %.1f",
			snr, lora.DemodFloorSNR(lora.SF12))
	}
	// But the attenuation relative to an omni must be large (≥ 14 dB net).
	omni := e.SNRdB(Link{TXPowerDBm: 20, TXPos: node, RXPos: gw, RXAntenna: Omni(12)})
	if omni-snr < 14 {
		t.Errorf("directional rejection = %.1f dB, want ≥ 14", omni-snr)
	}
}

func TestGainSymmetryProperty(t *testing.T) {
	a := Directional12dBi(0)
	f := func(raw int16) bool {
		b := float64(raw) / 1000
		return math.Abs(a.Gain(b)-a.Gain(-b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiffWraps(t *testing.T) {
	if d := angleDiff(math.Pi-0.1, -math.Pi+0.1); math.Abs(math.Abs(d)-0.2) > 1e-9 {
		t.Errorf("angleDiff across ±π = %v, want ±0.2", d)
	}
}

func TestTXPowerIndex(t *testing.T) {
	if TXPowerIndexDBm(0) != 20 || TXPowerIndexDBm(7) != 6 {
		t.Error("TX power index table: idx0=20 dBm, idx7=6 dBm")
	}
	for i := uint8(0); i < NumTXPowers-1; i++ {
		if TXPowerIndexDBm(i) <= TXPowerIndexDBm(i+1) {
			t.Error("power must fall with index")
		}
	}
}

func TestMaxDR(t *testing.T) {
	// High SNR: DR5. Just above SF12 floor: DR0. Below: no link.
	if d, ok := MaxDR(10, 0); !ok || d != lora.DR5 {
		t.Errorf("MaxDR(10) = %v,%v", d, ok)
	}
	if d, ok := MaxDR(-19, 0); !ok || d != lora.DR0 {
		t.Errorf("MaxDR(-19) = %v,%v, want DR0", d, ok)
	}
	if _, ok := MaxDR(-25, 0); ok {
		t.Error("SNR below the SF12 floor must not close")
	}
	// Margin shifts the decision.
	// -5 dB with a 3 dB margin leaves -8 dB: below the SF7 floor (-7.5)
	// but above SF8 (-10), so DR4 is the fastest viable rate.
	if d, _ := MaxDR(-5, 3); d != lora.DR4 {
		t.Errorf("with 3 dB margin, -5 dB must select DR4, got %v", d)
	}
}

func TestMaxDRMonotoneProperty(t *testing.T) {
	f := func(raw int8) bool {
		snr := float64(raw) / 4
		d1, ok1 := MaxDR(snr, 0)
		d2, ok2 := MaxDR(snr+1, 0)
		if !ok1 {
			return true
		}
		return ok2 && d2 >= d1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingForSNR(t *testing.T) {
	r, ok := RingForSNR(0)
	if !ok || r.DR() != lora.DR5 {
		t.Errorf("ring at 0 dB = %v, want ring5/DR5", r)
	}
	r, ok = RingForSNR(-18)
	if !ok || r.DR() != lora.DR0 {
		t.Errorf("ring at -18 dB = %v, want ring0/DR0", r)
	}
	if _, ok := RingForSNR(-30); ok {
		t.Error("-30 dB must be unreachable")
	}
}
