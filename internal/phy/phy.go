// Package phy models the wireless link between LoRa nodes and gateways:
// geometry, log-distance path loss with deterministic per-link shadowing,
// antenna patterns (including the 12 dBi directional antenna of Figure 7),
// and the link budget that turns transmit power into receive SNR.
//
// The propagation constants are calibrated to the paper's testbed: a
// 2.1 km × 1.6 km urban area (Figure 11) whose packet traces span SNRs
// from -15 dB to +5 dB (Appendix D), i.e. links from DR5-capable near the
// gateway down to DR0-only at the cell edge.
package phy

import (
	"fmt"
	"math"

	"github.com/alphawan/alphawan/internal/lora"
)

// Point is a position in meters on the deployment plane.
type Point struct{ X, Y float64 }

// Distance returns the Euclidean distance in meters.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Bearing returns the angle from p to q in radians, in (-π, π].
func (p Point) Bearing(q Point) float64 {
	return math.Atan2(q.Y-p.Y, q.X-p.X)
}

// TXPowerIndexDBm maps the LoRaWAN TX power index (0..7) to dBm for the
// 915/923 MHz bands: index 0 is the maximum (20 dBm in our profile, as
// used by the paper's Figure 16 "20 dBm" setting), each step -2 dB.
func TXPowerIndexDBm(idx uint8) float64 { return 20 - 2*float64(idx) }

// NumTXPowers is the number of usable TX power indices.
const NumTXPowers = 8

// Environment holds the propagation model parameters.
type Environment struct {
	// PL0 is the path loss (dB) at the reference distance D0 (meters).
	PL0 float64
	D0  float64
	// Exponent is the log-distance path-loss exponent (≈3.5 urban).
	Exponent float64
	// ShadowSigma is the standard deviation (dB) of lognormal shadowing.
	ShadowSigma float64
	// ShadowClamp, when positive, truncates the standard-normal shadow
	// draw to ±ShadowClamp (in σ units). Zero keeps the legacy unclamped
	// draw, whose tail is bounded only by the Box-Muller u1 guard (see
	// MaxShadowDB). City-scale sharded runs clamp at 3σ so that a
	// transmission's maximum reach — and therefore the set of grid cells
	// its interference must be exported to — stays tightly bounded.
	ShadowClamp float64
	// Seed makes the per-link shadowing deterministic.
	Seed int64
}

// Urban returns propagation parameters matching the paper's testbed:
// with 14 dBm transmit power a link at ~100 m sees ≈ +5 dB SNR and a
// blocked 2 km link falls to ≈ -15…-20 dB, reproducing the DR mix of
// Figure 11.
func Urban(seed int64) Environment {
	return Environment{PL0: 91, D0: 40, Exponent: 3.5, ShadowSigma: 4, Seed: seed}
}

// Suburban returns a milder propagation profile (longer range, as in the
// paper's ">10 km suburban" coverage quote).
func Suburban(seed int64) Environment {
	return Environment{PL0: 87, D0: 40, Exponent: 2.9, ShadowSigma: 3, Seed: seed}
}

// DenseUrban returns the heavy-attenuation profile of the paper's testbed
// traces (Appendix D: packet SNRs from -15 dB to +5 dB across the 2.1 km ×
// 1.6 km area with building blockage and indoor links): with 14 dBm TX a
// 200 m link sits near +2 dB and 700 m near -18 dB, spreading users across
// all six data rates as in Figure 11.
func DenseUrban(seed int64) Environment {
	return Environment{PL0: 118, D0: 40, Exponent: 3.8, ShadowSigma: 6, Seed: seed}
}

// Metro returns the propagation profile of the city-scale sharded runs
// (the `city-1M` sweep): urban attenuation midway between Urban and
// DenseUrban, with shadowing clamped at 3σ so a transmission's worst-case
// reach — and therefore the set of grid cells its interference must be
// exported to — is hard-bounded. With 14 dBm TX the DR0 demodulation
// floor closes at ≈900 m, giving the ~1.2 km gateway grids of the city
// experiments realistic edge users at every data rate.
func Metro(seed int64) Environment {
	return Environment{PL0: 105, D0: 40, Exponent: 3.6, ShadowSigma: 5, ShadowClamp: 3, Seed: seed}
}

// PathLoss returns the deterministic path loss in dB between two points,
// including the frozen shadowing term for that link. Shadowing is a
// function of both endpoints, so the same link always sees the same value
// (static deployment) while different links fade independently.
func (e Environment) PathLoss(a, b Point) float64 {
	d := a.Distance(b)
	if d < 1 {
		d = 1
	}
	pl := e.PL0 + 10*e.Exponent*math.Log10(d/e.D0)
	return pl + e.shadow(a, b)*e.ShadowSigma
}

// shadow returns a deterministic standard-normal draw for the unordered
// link (a, b), truncated to ±ShadowClamp σ when the clamp is set.
func (e Environment) shadow(a, b Point) float64 {
	// Hash the two endpoints symmetrically so shadow(a,b) == shadow(b,a).
	ha := hashPoint(a)
	hb := hashPoint(b)
	h := ha + hb + uint64(e.Seed)*0x9E3779B97F4A7C15
	// Two mixed 32-bit halves → Box-Muller.
	h = mix(h)
	u1 := float64(h>>11) / float64(1<<53)
	h = mix(h + 0x9E3779B97F4A7C15)
	u2 := float64(h>>11) / float64(1<<53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	if c := e.ShadowClamp; c > 0 {
		if z > c {
			z = c
		} else if z < -c {
			z = -c
		}
	}
	return z
}

// maxBoxMullerZ is the exact bound of the unclamped shadow draw: u1 is
// clamped to ≥ 1e-12 before the Box-Muller transform and |cos| ≤ 1, so
// |z| never exceeds sqrt(-2·ln(1e-12)) ≈ 7.43.
var maxBoxMullerZ = math.Sqrt(-2 * math.Log(1e-12))

// MaxShadowDB returns a hard upper bound on the shadowing term (in dB)
// any link in this environment can see — ShadowClamp·σ when clamped,
// otherwise the Box-Muller bound above. The sharded medium uses it to
// bound a transmission's best-case receive power at a distant grid cell.
func (e Environment) MaxShadowDB() float64 {
	z := maxBoxMullerZ
	if e.ShadowClamp > 0 && e.ShadowClamp < z {
		z = e.ShadowClamp
	}
	return z * e.ShadowSigma
}

func hashPoint(p Point) uint64 {
	return mix(math.Float64bits(p.X)) + mix(math.Float64bits(p.Y)^0xABCDEF)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Antenna describes a gateway antenna pattern.
type Antenna struct {
	// GainDBi is the boresight gain.
	GainDBi float64
	// Directional antennas attenuate off-boresight signals; Omni has
	// Beamwidth 0 meaning no directivity.
	Directional bool
	// BoresightRad is the steering direction.
	BoresightRad float64
	// BeamwidthRad is the -3 dB beamwidth.
	BeamwidthRad float64
	// FrontToBackDB is the maximum attenuation behind the antenna.
	// The paper's RAK 12 dBi panel shows 14–40 dB off-steer attenuation
	// (Figure 7).
	FrontToBackDB float64
}

// Omni returns an omnidirectional antenna with the given gain.
func Omni(gainDBi float64) Antenna { return Antenna{GainDBi: gainDBi} }

// Directional12dBi returns the RAK 12 dBi directional panel of Figure 7:
// 60° beamwidth, up to 40 dB front-to-back attenuation.
func Directional12dBi(boresightRad float64) Antenna {
	return Antenna{
		GainDBi:       12,
		Directional:   true,
		BoresightRad:  boresightRad,
		BeamwidthRad:  60 * math.Pi / 180,
		FrontToBackDB: 40,
	}
}

// Gain returns the antenna gain in dBi toward the given bearing.
// For directional antennas the pattern rolls off quadratically to the
// front-to-back limit, reproducing the 14–40 dB attenuation band the
// paper measured off the steered direction.
func (a Antenna) Gain(bearingRad float64) float64 {
	if !a.Directional {
		return a.GainDBi
	}
	// Angular distance from boresight normalized to [0, π].
	d := math.Abs(angleDiff(bearingRad, a.BoresightRad))
	// 3 dB down at half the beamwidth; quadratic roll-off, clamped.
	x := d / (a.BeamwidthRad / 2)
	att := 3 * x * x
	if att > a.FrontToBackDB {
		att = a.FrontToBackDB
	}
	return a.GainDBi - att
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// Link computes the received power and SNR of a transmission.
type Link struct {
	TXPowerDBm float64
	TXPos      Point
	RXPos      Point
	RXAntenna  Antenna
}

// RXPowerDBm returns the received power at the gateway.
func (e Environment) RXPowerDBm(l Link) float64 {
	g := l.RXAntenna.Gain(l.RXPos.Bearing(l.TXPos))
	return l.TXPowerDBm - e.PathLoss(l.TXPos, l.RXPos) + g
}

// SNRdB returns the received SNR over a 125 kHz channel.
func (e Environment) SNRdB(l Link) float64 {
	return e.RXPowerDBm(l) - lora.NoiseFloorDBm(lora.BW125)
}

// MaxDR returns the fastest data rate whose demodulation floor the link
// SNR clears with the given margin, or (DR0, false) when even SF12 does
// not close. This is the SNR→DR mapping that both the standard ADR and
// AlphaWAN's planner use.
func MaxDR(snrDB, marginDB float64) (lora.DR, bool) {
	for d := lora.DR5; d >= lora.DR0; d-- {
		if snrDB-marginDB >= lora.DemodFloorSNR(d.SF()) {
			return d, true
		}
	}
	return lora.DR0, false
}

// DistanceRing discretizes node-gateway reachability for the CP problem
// (§4.3.1 "we simplify the communication ranges of end nodes into various
// discrete distances, denoted by a set DR"). Ring l means "reachable with
// data rate l or slower": ring 0 is the widest (DR0-only edge links) and
// ring 5 the tightest (DR5-capable).
type DistanceRing int

// NumDistanceRings is the number of discrete transmission distances; it
// equals the number of data rates since range is set by the SF in use.
const NumDistanceRings = lora.NumDRs

// RingForSNR returns the tightest ring whose data rate the link supports.
func RingForSNR(snrDB float64) (DistanceRing, bool) {
	d, ok := MaxDR(snrDB, 0)
	return DistanceRing(d), ok
}

// DR returns the data rate corresponding to the ring.
func (r DistanceRing) DR() lora.DR { return lora.DR(r) }

func (r DistanceRing) String() string { return fmt.Sprintf("ring%d", int(r)) }

// Pt is a convenience constructor for Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }
