// Package bench is the reproduction benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Each iteration regenerates the
// experiment's full table; run with
//
//	go test -bench=. -benchmem
//
// and compare the emitted rows against EXPERIMENTS.md. Every benchmark
// reports the experiment's headline metric via b.ReportMetric where the
// experiment exposes one.
package bench

import (
	"testing"

	"github.com/alphawan/alphawan/internal/experiments"
)

// runExperiment executes one registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := e.Run(1)
		if res.Table.Rows() == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		if i == 0 && testing.Verbose() {
			b.Logf("\n%s", res.Table.String())
			for _, n := range res.Notes {
				b.Logf("-> %s", n)
			}
		}
	}
}

// Figure 2: capacity gaps of operational LoRaWANs.
func BenchmarkFig02a(b *testing.B) { runExperiment(b, "fig02a") }
func BenchmarkFig02b(b *testing.B) { runExperiment(b, "fig02b") }

// Figure 3: the gateway reception pipeline (lock-on order, FCFS
// fairness, decode-then-filter).
func BenchmarkFig03ab(b *testing.B) { runExperiment(b, "fig03ab") }
func BenchmarkFig03cd(b *testing.B) { runExperiment(b, "fig03cd") }
func BenchmarkFig03ef(b *testing.B) { runExperiment(b, "fig03ef") }

// Figure 4: loss-cause breakdowns at scale and under coexistence.
func BenchmarkFig04a(b *testing.B) { runExperiment(b, "fig04a") }
func BenchmarkFig04b(b *testing.B) { runExperiment(b, "fig04b") }

// Figure 5: Strategies ① and ②.
func BenchmarkFig05a(b *testing.B) { runExperiment(b, "fig05a") }
func BenchmarkFig05b(b *testing.B) { runExperiment(b, "fig05b") }

// Figure 6: standard ADR's cell shrinking and DR skew.
func BenchmarkFig06(b *testing.B) { runExperiment(b, "fig06") }

// Figure 7: directional antennas.
func BenchmarkFig07(b *testing.B) { runExperiment(b, "fig07") }

// Figure 8: overlapping channels and packet performance.
func BenchmarkFig08(b *testing.B) { runExperiment(b, "fig08") }

// Figure 12: AlphaWAN's testbed evaluation.
func BenchmarkFig12a(b *testing.B)  { runExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B)  { runExperiment(b, "fig12b") }
func BenchmarkFig12c(b *testing.B)  { runExperiment(b, "fig12c") }
func BenchmarkFig12de(b *testing.B) { runExperiment(b, "fig12de") }

// Figure 13: scaled operations against the state of the art.
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// Figure 14: partial adoption.
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

// Figure 15: fairness among coexisting networks.
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }

// Figure 16: spectrum sharing's impact on reception thresholds.
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }

// Figure 17: capacity-upgrade latency.
func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17") }

// Figure 18 / Appendix A: spectrum allocations worldwide.
func BenchmarkFig18(b *testing.B) { runExperiment(b, "fig18") }

// Figure 21 / Appendix D: 53-week user expansion.
func BenchmarkFig21(b *testing.B) { runExperiment(b, "fig21") }

// Table 1: the strategy survey (principles ①–④ quantified).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// Table 4 / Appendix C: COTS gateway capacities.
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// Ablations (DESIGN.md §5). Lock-on ordering is exercised by Fig 3a/b;
// the remaining design choices have dedicated benches.
func BenchmarkAblationLockOn(b *testing.B)           { runExperiment(b, "fig03ab") }
func BenchmarkAblationPreFilter(b *testing.B)        { runExperiment(b, "abl-prefilter") }
func BenchmarkAblationSeeding(b *testing.B)          { runExperiment(b, "abl-seeding") }
func BenchmarkAblationOverlapThreshold(b *testing.B) { runExperiment(b, "abl-overlap") }
func BenchmarkAblationTrafficWindows(b *testing.B)   { runExperiment(b, "abl-trafficwin") }

// City-scale smoke: the 50k-device sharded-SoA run CI gates on. The full
// city-1M sweep (up to a million devices, three strategies) is not a
// testing.B benchmark — the CI bench smoke runs every benchmark once —
// but is available as `alphawan-bench -only city-1M`.
func BenchmarkCitySmoke(b *testing.B) {
	e, ok := experiments.Get("city-smoke")
	if !ok {
		b.Fatal("city-smoke not registered")
	}
	b.ReportAllocs()
	var devices int
	for i := 0; i < b.N; i++ {
		res := e.Run(1)
		if res.Table.Rows() == 0 {
			b.Fatal("city-smoke produced no rows")
		}
		devices = res.Devices
	}
	if devices > 0 {
		b.ReportMetric(float64(devices)/b.Elapsed().Seconds()*float64(b.N), "devices/sec")
	}
}
