// Coexistence: six operators share 1.6 MHz through a real TCP Master.
//
// Each operator dials the Master node, authenticates with the region's
// shared secret, and receives a frequency-misaligned channel plan. The
// simulation then shows that the six networks' packets no longer consume
// each other's decoders: per-network capacity stays near each network's
// own user count, versus the collapse under standard homogeneous plans.
//
//	go run ./examples/coexistence
package main

import (
	"fmt"
	"math"
	"time"

	"github.com/alphawan/alphawan/alphawan"
)

const operators = 6

func buildNetwork(plans [][]alphawan.Channel) map[int]int {
	env := alphawan.Urban(7)
	net := alphawan.NewNetwork(7, env)
	for k := 0; k < operators; k++ {
		op := net.AddOperator()
		chans := plans[k]
		// Heterogeneous intra-network split of the operator's plan over
		// its three gateways (3/3/2 channels).
		blocks := [][2]int{{0, 3}, {3, 3}, {6, 2}}
		for g, b := range blocks {
			cfg := alphawan.RadioConfig{Channels: chans[b[0] : b[0]+b[1]]}
			if _, err := op.AddGateway(alphawan.RAK7268CV2,
				alphawan.Pt(float64(k)*10+float64(g)*3, float64(k)), cfg); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 24; i++ {
			ang := 2 * math.Pi * float64(i+24*k) / (24 * operators)
			radius := 100 + float64((i*37+k*11)%250)
			op.AddNode(alphawan.Pt(radius*math.Cos(ang), radius*math.Sin(ang)),
				[]alphawan.Channel{chans[i%8]}, alphawan.DR((i/8*2+k)%6))
		}
	}
	probe := net.CapacityProbe(5 * alphawan.Second)
	out := map[int]int{}
	for k, op := range net.Operators {
		out[k] = probe[op.ID]
	}
	return out
}

func main() {
	// Start a Master node on a real TCP socket.
	secret := []byte("coimbra-region")
	master, err := alphawan.NewMaster("127.0.0.1:0", secret, nil)
	if err != nil {
		panic(err)
	}
	defer master.Close()
	fmt.Printf("Master node listening on %s\n", master.Addr())

	// Each operator requests its plan over TCP.
	spec := alphawan.BandSpecOf(alphawan.AS923)
	plans := make([][]alphawan.Channel, operators)
	for k := 0; k < operators; k++ {
		c, err := alphawan.DialMaster(master.Addr().String(),
			fmt.Sprintf("operator-%d", k+1), secret, time.Second)
		if err != nil {
			panic(err)
		}
		alloc, err := c.RequestPlan(spec, operators)
		if err != nil {
			panic(err)
		}
		c.Close()
		plans[k] = alloc.Channels()
		fmt.Printf("operator-%d: shift %+d kHz, adjacent overlap %.0f%%\n",
			k+1, alloc.ShiftHz/1000, alloc.Overlap*100)
	}

	// Standard coexistence: everyone on the same grid.
	std := make([][]alphawan.Channel, operators)
	for k := range std {
		std[k] = alphawan.AS923.AllChannels()
	}
	stdCaps := buildNetwork(std)
	awCaps := buildNetwork(plans)

	fmt.Printf("\n%-12s  %-18s  %-18s\n", "network", "standard plan", "AlphaWAN (Master)")
	stdTotal, awTotal := 0, 0
	for k := 0; k < operators; k++ {
		fmt.Printf("operator-%-3d  %-18d  %-18d\n", k+1, stdCaps[k], awCaps[k])
		stdTotal += stdCaps[k]
		awTotal += awCaps[k]
	}
	fmt.Printf("%-12s  %-18d  %-18d\n", "total", stdTotal, awTotal)
	fmt.Printf("\nper-MHz utilization: %.1f → %.1f users/MHz (%.0f%% improvement)\n",
		float64(stdTotal)/1.6, float64(awTotal)/1.6,
		(float64(awTotal)/float64(stdTotal)-1)*100)
}
