// Citynet: a city-scale operator (15 gateways, 4.8 MHz, 144 physical
// nodes emulating 12,000 duty-cycled users) compared across standard
// LoRaWAN and AlphaWAN, with the packet-loss causes broken down the way
// the paper's Figure 4 does.
//
//	go run ./examples/citynet
package main

import (
	"fmt"

	"github.com/alphawan/alphawan/alphawan"
	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/metrics"
	"github.com/alphawan/alphawan/internal/traffic"
)

const (
	gateways = 15
	physical = 144
	users    = 12000
)

func deploy(seed int64, plan bool) alphawan.NetworkStats {
	env := alphawan.Urban(seed)
	env.Exponent = 3.0
	env.ShadowSigma = 6
	net := alphawan.NewNetwork(seed, env)
	op := net.AddOperator()

	cfgs := alphawan.StandardConfigs(alphawan.Testbed, gateways, op.Sync)
	for i := 0; i < gateways; i++ {
		x := 200 + float64(i%5)*425.0
		y := 200 + float64(i/5)*600.0
		if _, err := op.AddGateway(alphawan.RAK7268CV2, alphawan.Pt(x, y), cfgs[i]); err != nil {
			panic(err)
		}
	}
	op.UniformNodesMargin(physical, 2100, 1600, alphawan.Testbed.AllChannels(), seed, 10)
	for i, nd := range op.Nodes {
		if i%3 != 0 {
			nd.DR = alphawan.DR(i % 3) // conservative static provisioning
		}
	}
	op.AssignNodesToGatewayPlans()

	if plan {
		net.LearningSweep(0, 500*alphawan.Millisecond, alphawan.Testbed.AllChannels(), 3)
		res, err := alphawan.Plan(alphawan.PlanInput{
			Log:             op.Server.Log(),
			Channels:        alphawan.Testbed.AllChannels(),
			Gateways:        op.GatewayInfo(),
			Sync:            op.Sync,
			TrafficOverride: float64(users) / physical * 0.005,
			NodeSide:        true,
			MarginDB:        2,
			TPC:             true,
		})
		if err != nil {
			panic(err)
		}
		if err := op.ApplyGatewayConfigs(res.GWConfigs); err != nil {
			panic(err)
		}
		op.ApplyNodePlans(res.NodePlans)
	}

	// Two minutes of emulated city traffic: each user at a 0.5% duty.
	net.Col.Reset()
	start := net.Sim.Now()
	window := 2 * des.Minute
	for _, nd := range op.Nodes {
		nd.DutyCycle = 1
		mean := des.Time(float64(traffic.MeanIntervalForDutyCycle(nd, 0.005)) * physical / users)
		traffic.StartPoisson(net.Med, nd, start, start+window, mean)
	}
	net.Sim.RunUntil(start + window + des.Minute)
	return net.Col.Network(op.ID)
}

func show(name string, s alphawan.NetworkStats) {
	fmt.Printf("%-18s sent %6d  PRR %.2f  losses: decoder %.2f  channel %.2f  other %.2f\n",
		name, s.Sent, s.PRR(),
		s.DecoderContentionRatio(), s.ChannelContentionRatio(),
		s.LossRatio(metrics.Others))
}

func main() {
	fmt.Printf("city network: %d gateways, %d physical nodes emulating %d users\n\n",
		gateways, physical, users)
	std := deploy(1, false)
	aw := deploy(1, true)
	show("standard LoRaWAN", std)
	show("AlphaWAN", aw)
	if aw.PRR() <= std.PRR() {
		panic("AlphaWAN should improve city-scale PRR")
	}
	fmt.Printf("\nAlphaWAN lifts PRR by %.0f%% at the %d-user scale\n",
		(aw.PRR()/std.PRR()-1)*100, users)
}
