// Quickstart: reproduce the paper's headline finding in 80 lines.
//
// We deploy one operator with three homogeneous gateways and 48 users (the
// spectrum's theoretical capacity), probe concurrent capacity (stuck at
// 16 — the decoder contention problem), then let AlphaWAN plan channels
// and probe again (close to the oracle).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"github.com/alphawan/alphawan/alphawan"
)

func main() {
	env := alphawan.Urban(1)
	env.ShadowSigma = 0 // controlled probe: no fading luck
	net := alphawan.NewNetwork(1, env)
	op := net.AddOperator()

	// Four SX1302 gateways (16 decoders each) on the standard homogeneous
	// channel plan of the 8-channel AS923 band.
	cfgs := alphawan.StandardConfigs(alphawan.AS923, 4, op.Sync)
	for i := 0; i < 4; i++ {
		if _, err := op.AddGateway(alphawan.RAK7268CV2, alphawan.Pt(float64(i)*5, 0), cfgs[i]); err != nil {
			panic(err)
		}
	}

	// 48 users on an equal-SNR ring: one per (channel, data-rate) pair —
	// the most favorable workload LoRaWAN can be offered.
	id := 0
	for ch := 0; ch < 8; ch++ {
		for dr := alphawan.DR0; dr <= alphawan.DR5; dr++ {
			ang := 2 * math.Pi * float64(id) / 48
			op.AddNode(alphawan.Pt(7.5+150*math.Cos(ang), 150*math.Sin(ang)),
				[]alphawan.Channel{alphawan.AS923.Channel(ch)}, dr)
			id++
		}
	}

	// Serialized learning traffic fills the server's operational logs.
	net.LearningPhase(0, alphawan.Second)

	// Probe 1: every user transmits concurrently.
	before := net.CapacityProbe(net.Sim.Now() + 5*alphawan.Second)
	fmt.Printf("standard LoRaWAN:  %d of 48 concurrent users served (oracle %d)\n",
		before[op.ID], alphawan.AS923.TheoreticalCapacity())

	// AlphaWAN: plan channels for gateways and nodes from the logs.
	plan, err := alphawan.Plan(alphawan.PlanInput{
		Log:             op.Server.Log(),
		Channels:        alphawan.AS923.AllChannels(),
		Gateways:        op.GatewayInfo(),
		Sync:            op.Sync,
		TrafficOverride: 1, // capacity probe: everyone concurrent
		NodeSide:        true,
	})
	if err != nil {
		panic(err)
	}
	if err := op.ApplyGatewayConfigs(plan.GWConfigs); err != nil {
		panic(err)
	}
	op.ApplyNodePlans(plan.NodePlans)
	fmt.Printf("planned in %v (decoder risk %.0f, channel overload %.0f)\n",
		plan.Latency.Solve.Round(1e6), plan.Cost.DecoderRisk, plan.Cost.ChannelOverload)

	// Probe 2: same workload, planned network.
	after := net.CapacityProbe(net.Sim.Now() + 10*alphawan.Second)
	fmt.Printf("AlphaWAN:          %d of 48 concurrent users served\n", after[op.ID])

	if after[op.ID] <= before[op.ID] {
		panic("AlphaWAN should beat the standard plan")
	}
}
