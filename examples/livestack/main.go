// Livestack: the end-to-end networked pipeline in one process — a
// ChirpStack-style network server behind a Semtech UDP packet-forwarder
// bridge, a simulated gateway fleet pushing real LoRaWAN frames over real
// UDP sockets, and the server deduplicating, MIC-verifying, and running
// ADR on the uplinks.
//
//	go run ./examples/livestack
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/alphawan/alphawan/alphawan"
	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/gateway"
	"github.com/alphawan/alphawan/internal/medium"
	"github.com/alphawan/alphawan/internal/netserver"
	"github.com/alphawan/alphawan/internal/node"
	"github.com/alphawan/alphawan/internal/region"
	"github.com/alphawan/alphawan/internal/traffic"
	"github.com/alphawan/alphawan/internal/udpfwd"
)

const devices = 12

var uplinks int

func main() {
	// 1. Network server + UDP bridge (the "cloud" side).
	srv := alphawan.NewNetServer()
	srv.ADREnabled = true
	var delivered int
	srv.Served.Subscribe(func(d netserver.Data) {
		delivered++
		if delivered <= 5 {
			log.Printf("app data from %v via gw %d (SNR %.1f dB): %q",
				d.Dev.Addr, d.Meta.Gateway, d.Meta.SNRdB, d.Payload)
		}
	})
	var adrCmds int
	srv.Commands.Subscribe(func(netserver.Command) { adrCmds++ })

	bridge, err := alphawan.NewBridge("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer bridge.Close()
	log.Printf("network server bridge on %s", bridge.Addr())

	go func() {
		for up := range bridge.Uplinks() {
			raw, err := udpfwd.DecodeData(up.RXPK.Data)
			if err != nil {
				continue
			}
			dr, err := udpfwd.ParseDatr(up.RXPK.Datr)
			if err != nil {
				continue
			}
			srv.HandleUplink(raw, netserver.UplinkMeta{
				Gateway: int(up.EUI), Freq: region.Hz(up.RXPK.Freq * 1e6),
				DR: dr, RSSIdBm: float64(up.RXPK.RSSI), SNRdB: up.RXPK.LSNR,
				At: des.Time(up.RXPK.Tmst),
			})
		}
	}()

	// 2. The "field" side: a simulated medium with two gateways, each
	// forwarding over a real UDP socket.
	env := alphawan.Urban(1)
	env.ShadowSigma = 0
	sim := des.New(1)
	med := medium.New(sim, env)
	cfgs := alphawan.StandardConfigs(alphawan.AS923, 2, 0x34)
	for i := 0; i < 2; i++ {
		gw, err := gateway.New(sim, med, i, alphawan.RAK7268CV2,
			alphawan.Pt(float64(i)*40, 0), alphawan.Antenna{}, cfgs[i])
		if err != nil {
			log.Fatal(err)
		}
		fwd, err := alphawan.NewForwarder(udpfwd.EUI(i), bridge.Addr().String(), 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		defer fwd.Close()
		gw.Uplinks.Subscribe(func(u gateway.Uplink) {
			uplinks++
			if err := fwd.Push([]udpfwd.RXPK{{
				Tmst: uint32(u.At), Freq: float64(u.TX.Channel.Center) / 1e6,
				Chan: u.Meta.Chain, Stat: 1, Modu: "LORA",
				Datr: udpfwd.DatrString(u.TX.DR), CodR: "4/5",
				RSSI: int(u.Meta.RSSIdBm), LSNR: u.Meta.SNRdB,
				Size: len(u.TX.Raw), Data: udpfwd.EncodeData(u.TX.Raw),
			}}, nil); err != nil {
				log.Printf("gw %d push: %v", u.GW.ID, err)
			}
		})
	}

	// 3. Devices: register the sessions server-side, then generate
	// traffic. (A production deployment would provision via OTAA join.)
	for i := 0; i < devices; i++ {
		nd := node.New(medium.NodeID(i+1), 1, 0x34, alphawan.Pt(100+float64(i)*9, 60))
		// Distinct (channel, data-rate) settings keep the demo's packets
		// from colliding with each other.
		nd.Channels = []alphawan.Channel{alphawan.AS923.Channel(i % 8)}
		nd.DR = alphawan.DR(i % 6)
		srv.Register(nd.DevAddr, nd.NwkSKey, nd.AppSKey, nd.DR, 0)
		traffic.StartPoisson(med, nd, 0, 60*des.Second, 4*des.Second)
	}

	log.Printf("simulating 60 s of traffic from %d devices through 2 gateways...", devices)
	sim.RunUntil(61 * des.Second)
	time.Sleep(time.Second) // drain in-flight UDP

	log.Printf("gateway uplink callbacks: %d", uplinks)
	st := srv.Stats()
	fmt.Printf("\nserver stats: %d gateway copies, %d delivered, %d duplicates, %d bad MICs, %d ADR commands\n",
		st.Uplinks, st.Delivered, st.Duplicates, st.BadMIC, st.ADRCommands)
	if st.Delivered == 0 || st.BadMIC != 0 {
		panic("live stack failed")
	}
	fmt.Println("end-to-end UDP LoRaWAN stack: OK")
}
