package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/alphawan/alphawan/internal/experiments"
)

func main() {
	dir := os.Args[1]
	os.MkdirAll(dir, 0o755)
	for _, e := range experiments.All() {
		res := e.Run(1)
		var b strings.Builder
		b.WriteString(res.Table.CSV())
		for _, n := range res.Notes {
			b.WriteString(n)
			b.WriteByte('\n')
		}
		if err := os.WriteFile(filepath.Join(dir, e.ID+".txt"), []byte(b.String()), 0o644); err != nil {
			panic(err)
		}
		fmt.Println("dumped", e.ID)
	}
}
