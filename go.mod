module github.com/alphawan/alphawan

go 1.22
