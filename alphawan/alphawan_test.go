package alphawan_test

import (
	"math"
	"testing"
	"time"

	"github.com/alphawan/alphawan/alphawan"
)

// TestPublicAPIQuickstart exercises the documented happy path end to end
// through the facade only: build → probe → plan → re-probe.
func TestPublicAPIQuickstart(t *testing.T) {
	env := alphawan.Urban(1)
	env.ShadowSigma = 0
	net := alphawan.NewNetwork(1, env)
	op := net.AddOperator()
	cfgs := alphawan.StandardConfigs(alphawan.AS923, 4, op.Sync)
	for i := 0; i < 4; i++ {
		if _, err := op.AddGateway(alphawan.RAK7268CV2, alphawan.Pt(float64(i)*5, 0), cfgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	id := 0
	for ch := 0; ch < 8; ch++ {
		for dr := alphawan.DR0; dr <= alphawan.DR5; dr++ {
			ang := 2 * math.Pi * float64(id) / 48
			op.AddNode(alphawan.Pt(7.5+150*math.Cos(ang), 150*math.Sin(ang)),
				[]alphawan.Channel{alphawan.AS923.Channel(ch)}, dr)
			id++
		}
	}
	net.LearningPhase(0, alphawan.Second)
	before := net.CapacityProbe(net.Sim.Now() + 5*alphawan.Second)
	if before[op.ID] != 16 {
		t.Fatalf("standard capacity = %d, want the 16-decoder cap", before[op.ID])
	}
	plan, err := alphawan.Plan(alphawan.PlanInput{
		Log:             op.Server.Log(),
		Channels:        alphawan.AS923.AllChannels(),
		Gateways:        op.GatewayInfo(),
		Sync:            op.Sync,
		TrafficOverride: 1,
		NodeSide:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.ApplyGatewayConfigs(plan.GWConfigs); err != nil {
		t.Fatal(err)
	}
	op.ApplyNodePlans(plan.NodePlans)
	after := net.CapacityProbe(net.Sim.Now() + 10*alphawan.Second)
	if after[op.ID] != 48 {
		t.Fatalf("planned capacity = %d, want the 48-user oracle", after[op.ID])
	}
}

// TestPublicAPIMaster exercises the TCP Master through the facade.
func TestPublicAPIMaster(t *testing.T) {
	secret := []byte("s")
	m, err := alphawan.NewMaster("127.0.0.1:0", secret, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c, err := alphawan.DialMaster(m.Addr().String(), "op1", secret, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	alloc, err := c.RequestPlan(alphawan.BandSpecOf(alphawan.AS923), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Channels()) == 0 {
		t.Error("allocation must carry channels")
	}
}

// TestPublicAPIExperiments checks the registry surface.
func TestPublicAPIExperiments(t *testing.T) {
	if len(alphawan.Experiments()) < 25 {
		t.Errorf("experiments = %d", len(alphawan.Experiments()))
	}
	e, ok := alphawan.GetExperiment("table4")
	if !ok {
		t.Fatal("table4 missing")
	}
	if res := e.Run(1); res.Table.Rows() == 0 {
		t.Error("no rows")
	}
}

// TestPublicAPIRegions sanity-checks the exported datasets.
func TestPublicAPIRegions(t *testing.T) {
	if alphawan.AS923.TheoreticalCapacity() != 48 {
		t.Error("AS923 oracle")
	}
	if alphawan.MHz(923.2) != alphawan.AS923.Channel(0).Center {
		t.Error("MHz helper")
	}
	if alphawan.RAK7268CV2.PracticalCapacity() != 16 {
		t.Error("case-study gateway decoders")
	}
}
