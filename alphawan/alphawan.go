// Package alphawan is the public API of the AlphaWAN library — a faithful
// reproduction of "Towards Next-Generation Global IoT: Empowering Massive
// Connectivity with Harmonious Multi-Network Coexistence" (SIGCOMM 2025).
//
// The library provides:
//
//   - A deterministic LoRaWAN network simulator whose gateway radios model
//     the COTS reception pipeline (per-chain detectors, FCFS decoder
//     dispatch, decode-then-filter) that gives rise to the paper's decoder
//     contention problem.
//   - The AlphaWAN channel-planning stack: log parsing, traffic
//     estimation, the CP optimization problem and its evolutionary solver,
//     and gateway/end-device configuration.
//   - The spectrum-sharing Master node (in-process registry or real TCP
//     service) that assigns coexisting operators frequency-misaligned
//     channel plans.
//   - A live stack speaking the Semtech UDP packet-forwarder protocol and
//     a ChirpStack-style network server.
//   - Runners for every table and figure of the paper's evaluation
//     (package list via Experiments).
//
// # Quickstart
//
//	net := alphawan.NewNetwork(1, alphawan.Urban(1))
//	op := net.AddOperator()
//	cfgs := alphawan.StandardConfigs(alphawan.AS923, 3, op.Sync)
//	for i := 0; i < 3; i++ {
//		op.AddGateway(alphawan.RAK7268CV2, alphawan.Pt(float64(i)*5, 0), cfgs[i])
//	}
//	// ... add nodes, probe capacity, plan, re-probe (see examples/).
package alphawan

import (
	"github.com/alphawan/alphawan/internal/alphawan/agent"
	"github.com/alphawan/alphawan/internal/alphawan/cp"
	"github.com/alphawan/alphawan/internal/alphawan/evolve"
	"github.com/alphawan/alphawan/internal/alphawan/master"
	"github.com/alphawan/alphawan/internal/alphawan/planner"
	"github.com/alphawan/alphawan/internal/baseline"
	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/events/sinks"
	"github.com/alphawan/alphawan/internal/experiments"
	"github.com/alphawan/alphawan/internal/gateway"
	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/medium"
	"github.com/alphawan/alphawan/internal/metrics"
	"github.com/alphawan/alphawan/internal/netserver"
	"github.com/alphawan/alphawan/internal/node"
	"github.com/alphawan/alphawan/internal/phy"
	"github.com/alphawan/alphawan/internal/radio"
	"github.com/alphawan/alphawan/internal/region"
	"github.com/alphawan/alphawan/internal/sim"
	"github.com/alphawan/alphawan/internal/udpfwd"
)

// Simulation time.
type (
	// Time is simulation time in microseconds.
	Time = des.Time
)

// Time constants.
const (
	Millisecond = des.Millisecond
	Second      = des.Second
	Minute      = des.Minute
	Hour        = des.Hour
)

// LoRa PHY types.
type (
	// DR is a LoRaWAN data-rate index (DR0 slowest … DR5 fastest).
	DR = lora.DR
	// SF is a LoRa spreading factor.
	SF = lora.SF
	// SyncWord distinguishes networks on the air.
	SyncWord = lora.SyncWord
)

// Data rates.
const (
	DR0 = lora.DR0
	DR1 = lora.DR1
	DR2 = lora.DR2
	DR3 = lora.DR3
	DR4 = lora.DR4
	DR5 = lora.DR5
)

// Spectrum types.
type (
	// Hz is a frequency.
	Hz = region.Hz
	// Channel is one LoRa uplink channel.
	Channel = region.Channel
	// Band is a channel grid (e.g. AS923, US915).
	Band = region.Band
)

// Standard bands.
var (
	US915   = region.US915
	EU868   = region.EU868
	AS923   = region.AS923
	Testbed = region.Testbed
)

// MHz constructs a frequency from megahertz.
func MHz(v float64) Hz { return region.MHz(v) }

// Propagation and geometry.
type (
	// Environment is a propagation model.
	Environment = phy.Environment
	// Point is a position in meters.
	Point = phy.Point
	// Antenna is a gateway antenna pattern.
	Antenna = phy.Antenna
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return phy.Pt(x, y) }

// Propagation profiles.
var (
	// Urban is the paper's testbed-class urban propagation.
	Urban = phy.Urban
	// Suburban reaches farther (the paper's >10 km quote).
	Suburban = phy.Suburban
	// DenseUrban matches the Appendix D trace SNR range (-15…+5 dB).
	DenseUrban = phy.DenseUrban
)

// Omni returns an omnidirectional antenna with the given gain.
func Omni(gainDBi float64) Antenna { return phy.Omni(gainDBi) }

// Directional12dBi returns the RAK 12 dBi panel of Figure 7.
func Directional12dBi(boresightRad float64) Antenna {
	return phy.Directional12dBi(boresightRad)
}

// Gateway radios (Table 4).
type (
	// Chipset describes a gateway radio's reception resources.
	Chipset = radio.Chipset
	// GatewayModel is a commercial gateway product.
	GatewayModel = radio.GatewayModel
	// RadioConfig is a gateway channel configuration.
	RadioConfig = radio.Config
)

// Chipset profiles and the Table 4 model list.
var (
	SX1301        = radio.SX1301
	SX1302        = radio.SX1302
	SX1303        = radio.SX1303
	GatewayModels = radio.Models
	// RAK7268CV2 is the paper's case-study gateway (SX1302, 16 decoders).
	RAK7268CV2 = radio.Models[3]
)

// Scenario composition.
type (
	// Network is a composed simulation scenario.
	Network = sim.Network
	// Operator is one network operator in a scenario.
	Operator = sim.Operator
	// Node is a LoRaWAN end device.
	Node = node.Node
	// NetworkStats aggregates one network's outcomes.
	NetworkStats = metrics.NetworkStats
	// Transmission is one packet on the air.
	Transmission = medium.Transmission
)

// NewNetwork creates a simulation scenario with a seed and environment.
func NewNetwork(seed int64, env Environment) *Network { return sim.New(seed, env) }

// TotalCapacity sums a capacity probe across operators.
var TotalCapacity = sim.TotalCapacity

// Baseline strategies.
var (
	// StandardConfigs yields homogeneous standard channel plans.
	StandardConfigs = baseline.StandardConfigs
	// RandomCPConfigs yields the Random CP baseline configurations.
	RandomCPConfigs = baseline.RandomCPConfigs
)

// Channel planning (the paper's intra-network primitive).
type (
	// PlanInput configures a planning run.
	PlanInput = planner.Input
	// PlanResult is the planner's output.
	PlanResult = planner.Result
	// NodePlan is one device's planned settings.
	NodePlan = planner.NodePlan
	// PlanGateway identifies a gateway to the planner.
	PlanGateway = planner.GatewayInfo
	// CPProblem is the raw optimization problem (§4.3.1).
	CPProblem = cp.Problem
	// CPAssignment is one candidate solution.
	CPAssignment = cp.Assignment
	// SolverOptions tunes the evolutionary solver.
	SolverOptions = evolve.Options
)

// Plan runs the full intra-network planning pipeline.
func Plan(in PlanInput) (*PlanResult, error) { return planner.Plan(in) }

// SolveCP runs the evolutionary solver on a raw CP problem.
func SolveCP(p *CPProblem, opt SolverOptions) (*evolve.Result, error) {
	return evolve.Solve(p, opt)
}

// DefaultSolverOptions returns solver settings sized for the paper's
// scales.
var DefaultSolverOptions = evolve.DefaultOptions

// Spectrum sharing (the inter-network primitive).
type (
	// Master is the TCP Master node server.
	Master = master.Server
	// MasterClient is an operator-side connection.
	MasterClient = master.Client
	// MasterRegistry is the in-process allocation state.
	MasterRegistry = master.Registry
	// BandSpec is the wire description of a shared band.
	BandSpec = master.BandSpec
	// Allocation is one operator's assigned plan.
	Allocation = master.Allocation
)

// Master node constructors.
var (
	NewMaster         = master.NewServer
	DialMaster        = master.Dial
	NewMasterRegistry = master.NewRegistry
	BandSpecOf        = master.FromBand
)

// Gateway agents (configuration distribution + reboot).
type (
	// Agent applies channel configurations to a gateway.
	Agent = agent.Agent
)

// NewAgent creates a gateway agent.
var NewAgent = agent.New

// Live stack (real UDP + network server).
type (
	// NetServer is the ChirpStack-style network server core.
	NetServer = netserver.Server
	// Bridge is the UDP packet-forwarder bridge (server side).
	Bridge = udpfwd.Bridge
	// Forwarder is the gateway-side packet forwarder.
	Forwarder = udpfwd.Forwarder
)

// Live stack constructors.
var (
	NewNetServer = netserver.New
	NewBridge    = udpfwd.NewBridge
	NewForwarder = udpfwd.NewForwarder
)

// Observability. Every layer publishes typed packet-lifecycle events on
// a deterministic in-process bus (subscribers run synchronously in
// registration order, so observers never perturb a seeded run). The
// topics live on the composed scenario — e.g. Network.Med.Deliveries,
// Network.Col.Outcomes — and these are the ready-made consumers.
type (
	// Delivery is one successful packet-gateway reception edge.
	Delivery = medium.Delivery
	// PacketDrop is one failed packet-gateway edge with its drop reason.
	PacketDrop = medium.Drop
	// Outcome is the collector's per-packet verdict: delivered somewhere,
	// or lost with an attributed cause (the Figure 4/13 classification).
	Outcome = metrics.Outcome
	// LossCause classifies why a lost packet died.
	LossCause = metrics.Cause
	// GatewayUplink is a decoded own-network frame leaving a gateway for
	// the backhaul.
	GatewayUplink = gateway.Uplink
	// GatewayConfigEvent marks a gateway going offline/online around a
	// reconfiguration reboot.
	GatewayConfigEvent = gateway.ConfigEvent
	// Tracer writes one JSONL record per packet-lifecycle edge.
	Tracer = sinks.Tracer
	// Summary prints periodic sent/received/loss-cause progress lines.
	Summary = sinks.Summary
)

// Observability sink constructors.
var (
	// AttachTracer wires a JSONL lifecycle tracer to every layer of a
	// composed scenario (attach after composing, before running).
	AttachTracer = sinks.Attach
	// AttachSummary subscribes a periodic run-summary printer to a
	// scenario's collector.
	AttachSummary = sinks.AttachSummary
	// NewTracer creates an unattached tracer; wire it to individual
	// layers with its Observe methods.
	NewTracer = sinks.NewTracer
)

// Experiments exposes the paper-reproduction runners (one per table and
// figure of the evaluation).
type (
	// Experiment is one table/figure reproduction.
	Experiment = experiments.Experiment
	// ExperimentResult is an experiment's output.
	ExperimentResult = experiments.Result
)

// Experiment registry access.
var (
	Experiments   = experiments.All
	GetExperiment = experiments.Get
)
