// Command alphawan-master runs the AlphaWAN spectrum-sharing Master node:
// a TCP service that registers network operators and assigns each a
// frequency-misaligned channel plan (§4.3.2).
//
// Usage:
//
//	alphawan-master -listen :7600 -secret region-secret [-networks 4]
//
// Operators connect with the master.Client protocol (see
// examples/coexistence) or any JSON-lines TCP client:
//
//	{"method":"request_plan","operator":"op1","auth":"<hmac>",
//	 "band":{"start_hz":923200000,"spacing_hz":200000,"channels":8,"bw_hz":125000},
//	 "expected_networks":4}
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"github.com/alphawan/alphawan/internal/alphawan/master"
	"github.com/alphawan/alphawan/internal/region"
)

func main() {
	listen := flag.String("listen", ":7600", "TCP listen address")
	secret := flag.String("secret", "", "shared HMAC secret (required)")
	networks := flag.Int("networks", 0, "pre-size the region for this many networks on the AS923 band (0 = first operator's request configures it)")
	rebalance := flag.Bool("rebalance", false, "allow authenticated operators to trigger a region-wide rebalance (recomputes every live allocation)")
	flag.Parse()
	if *secret == "" {
		fmt.Fprintln(os.Stderr, "alphawan-master: -secret is required")
		os.Exit(2)
	}
	var reg *master.Registry
	if *networks > 0 {
		reg = master.NewRegistry(master.FromBand(region.AS923), *networks)
	}
	srv, err := master.NewServer(*listen, []byte(*secret), reg)
	if err != nil {
		log.Fatalf("alphawan-master: %v", err)
	}
	srv.AllowRebalance(*rebalance)
	log.Printf("alphawan-master: listening on %s (rebalance=%v)", srv.Addr(), *rebalance)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("alphawan-master: shutting down")
	srv.Close()
}
