// Command alphawan-gwsim simulates a gateway fleet speaking the Semtech
// UDP packet-forwarder protocol to alphawan-server: it runs the in-process
// LoRaWAN simulation (nodes, medium, COTS radio pipelines) and forwards
// every decoded uplink over real UDP.
//
// Usage:
//
//	alphawan-gwsim -server 127.0.0.1:1700 -gateways 3 -devices 16 -duration 30s
//	alphawan-gwsim -impair drop=0.1,dup=0.05,reorder=0.1,delay=20ms -impair-seed 7
package main

import (
	"flag"
	"log"
	"time"

	"github.com/alphawan/alphawan/internal/baseline"
	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/gateway"
	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/medium"
	"github.com/alphawan/alphawan/internal/node"
	"github.com/alphawan/alphawan/internal/phy"
	"github.com/alphawan/alphawan/internal/radio"
	"github.com/alphawan/alphawan/internal/region"
	"github.com/alphawan/alphawan/internal/traffic"
	"github.com/alphawan/alphawan/internal/udpfwd"
)

func main() {
	server := flag.String("server", "127.0.0.1:1700", "network server UDP address")
	gateways := flag.Int("gateways", 3, "simulated gateways")
	devices := flag.Int("devices", 16, "simulated devices")
	duration := flag.Duration("duration", 30*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "simulation seed")
	impair := flag.String("impair", "",
		"backhaul impairment spec, e.g. drop=0.1,dup=0.05,reorder=0.1,delay=20ms")
	impairSeed := flag.Int64("impair-seed", 1, "impairment RNG seed")
	flag.Parse()

	imp, err := udpfwd.ParseImpairment(*impair)
	if err != nil {
		log.Fatal(err)
	}

	env := phy.Urban(*seed)
	env.ShadowSigma = 0
	sim := des.New(*seed)
	med := medium.New(sim, env)

	// Gateways: standard plans, each with a UDP forwarder toward the
	// server.
	cfgs := baseline.StandardConfigs(region.AS923, *gateways, lora.SyncPublic)
	for i := 0; i < *gateways; i++ {
		gw, err := gateway.New(sim, med, i, radio.Models[3], phy.Pt(float64(i)*10, 0), phy.Antenna{}, cfgs[i])
		if err != nil {
			log.Fatalf("gateway %d: %v", i, err)
		}
		fwd, err := udpfwd.NewForwarder(udpfwd.EUI(i), *server, 5*time.Second)
		if err != nil {
			log.Fatalf("forwarder %d: %v", i, err)
		}
		defer fwd.Close()
		// Each gateway's backhaul gets its own RNG stream so the fleet's
		// impairments are independent but reproducible run to run.
		if err := fwd.SetImpairment(imp, *impairSeed+int64(i)); err != nil {
			log.Fatalf("forwarder %d: %v", i, err)
		}
		gw.Uplinks.Subscribe(func(u gateway.Uplink) {
			rx := udpfwd.RXPK{
				Tmst: uint32(u.At), Freq: float64(u.TX.Channel.Center) / 1e6,
				Chan: u.Meta.Chain, Stat: 1, Modu: "LORA",
				Datr: udpfwd.DatrString(u.TX.DR), CodR: "4/5",
				RSSI: int(u.Meta.RSSIdBm), LSNR: u.Meta.SNRdB,
				Size: len(u.TX.Raw), Data: udpfwd.EncodeData(u.TX.Raw),
			}
			if err := fwd.Push([]udpfwd.RXPK{rx}, nil); err != nil {
				log.Printf("gateway %d: push failed: %v", u.GW.ID, err)
			}
		})
	}

	// Devices: node ids start at 1 so the derived DevAddrs and session
	// keys line up with alphawan-server's deterministic provisioning.
	var nodes []*node.Node
	for i := 0; i < *devices; i++ {
		nd := node.New(medium.NodeID(i+1), 1, lora.SyncPublic, phy.Pt(100+float64(i)*7, 50))
		nd.Channels = region.AS923.AllChannels()
		nd.DR = lora.DR(i % 6)
		nodes = append(nodes, nd)
		traffic.StartPoisson(med, nd, 0, des.FromDuration(*duration), 5*des.Second)
	}

	log.Printf("alphawan-gwsim: %d gateways → %s, %d devices, %v simulated",
		*gateways, *server, *devices, *duration)
	sim.RunUntil(des.FromDuration(*duration) + des.Minute)
	log.Printf("alphawan-gwsim: done")
	// Give in-flight UDP pushes a moment to drain.
	time.Sleep(500 * time.Millisecond)
}
