// Command alphawan-gwsim simulates a gateway fleet speaking the Semtech
// UDP packet-forwarder protocol to alphawan-server: it runs the in-process
// LoRaWAN simulation (nodes, medium, COTS radio pipelines) and forwards
// every decoded uplink over real UDP.
//
// Usage:
//
//	alphawan-gwsim -server 127.0.0.1:1700 -gateways 3 -devices 16 -duration 30s
//	alphawan-gwsim -chipset sx1302-9if
//	alphawan-gwsim -impair drop=0.1,dup=0.05,reorder=0.1,delay=20ms -impair-seed 7
//
// The -chipset flag selects a concentrator front-end profile
// (radio.FrontEnds): the gateway's channel plan derives from the profile's
// RF-chain centers and IF offsets, PUSH_DATA batches are bounded by the
// HAL's per-poll demodulation fetch (MAX_RX_PKT), and PULL_RESP downlinks
// are validated against the profile's RX1 channels and RX2 SF12 window.
// -chipset legacy keeps the original behaviour: AS923 standard plans and
// one rxpk per datagram.
package main

import (
	"flag"
	"log"
	"strings"
	"sync/atomic"
	"time"

	"github.com/alphawan/alphawan/internal/baseline"
	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/gateway"
	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/medium"
	"github.com/alphawan/alphawan/internal/node"
	"github.com/alphawan/alphawan/internal/phy"
	"github.com/alphawan/alphawan/internal/radio"
	"github.com/alphawan/alphawan/internal/region"
	"github.com/alphawan/alphawan/internal/traffic"
	"github.com/alphawan/alphawan/internal/udpfwd"
)

// pollInterval is the simulated HAL fetch cadence: pending rxpks are
// flushed into PUSH_DATA datagrams every poll, at most MaxRxPkt per
// datagram — the same bound the reference packet forwarder applies to
// lgw_receive.
const pollInterval = 10 * des.Millisecond

// downlinkStats counts PULL_RESP downlinks by receive window across the
// fleet. Atomics: the forwarder read loops run off the simulation
// goroutine.
type downlinkStats struct {
	rx1, rx2, rejected atomic.Int64
}

func chipsetNames() string {
	names := []string{"legacy"}
	for _, fe := range radio.FrontEnds {
		names = append(names, fe.Name)
	}
	return strings.Join(names, ", ")
}

func main() {
	server := flag.String("server", "127.0.0.1:1700", "network server UDP address")
	gateways := flag.Int("gateways", 3, "simulated gateways")
	devices := flag.Int("devices", 16, "simulated devices")
	duration := flag.Duration("duration", 30*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "simulation seed")
	chipset := flag.String("chipset", "sx1302",
		"concentrator front-end profile: "+chipsetNames())
	impair := flag.String("impair", "",
		"backhaul impairment spec, e.g. drop=0.1,dup=0.05,reorder=0.1,delay=20ms")
	impairSeed := flag.Int64("impair-seed", 1, "impairment RNG seed")
	flag.Parse()

	imp, err := udpfwd.ParseImpairment(*impair)
	if err != nil {
		log.Fatal(err)
	}

	var fe radio.FrontEnd
	legacy := *chipset == "legacy"
	if !legacy {
		var ok bool
		if fe, ok = radio.FrontEndByName(*chipset); !ok {
			log.Fatalf("unknown -chipset %q (want one of: %s)", *chipset, chipsetNames())
		}
	}

	env := phy.Urban(*seed)
	env.ShadowSigma = 0
	sim := des.New(*seed)
	med := medium.New(sim, env)

	// Gateways: each with a UDP forwarder toward the server. Front-end
	// mode derives every gateway's channel plan from the profile's radios
	// and IF chains; legacy mode keeps the AS923 standard plans.
	var cfgs []radio.Config
	var model radio.GatewayModel
	if legacy {
		cfgs = baseline.StandardConfigs(region.AS923, *gateways, lora.SyncPublic)
		model = radio.Models[3]
	} else {
		cfg, err := fe.Config(lora.SyncPublic)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *gateways; i++ {
			cfgs = append(cfgs, cfg)
		}
		model = fe.Model()
	}
	var dl downlinkStats
	for i := 0; i < *gateways; i++ {
		gw, err := gateway.New(sim, med, i, model, phy.Pt(float64(i)*10, 0), phy.Antenna{}, cfgs[i])
		if err != nil {
			log.Fatalf("gateway %d: %v", i, err)
		}
		fwd, err := udpfwd.NewForwarder(udpfwd.EUI(i), *server, 5*time.Second)
		if err != nil {
			log.Fatalf("forwarder %d: %v", i, err)
		}
		defer fwd.Close()
		// Each gateway's backhaul gets its own RNG stream so the fleet's
		// impairments are independent but reproducible run to run.
		if err := fwd.SetImpairment(imp, *impairSeed+int64(i)); err != nil {
			log.Fatalf("forwarder %d: %v", i, err)
		}
		// Drain and validate Class A downlinks. The forwarder's read loop
		// blocks once its downlink buffer fills, so an unconsumed channel
		// would eventually stall PUSH_ACK processing.
		go func(id int) {
			for tx := range fwd.Downlinks() {
				if legacy {
					dl.rx1.Add(1)
					continue
				}
				hz := region.Hz(tx.Freq*1e6 + 0.5)
				dr, err := udpfwd.ParseDatr(tx.Datr)
				if err != nil {
					dl.rejected.Add(1)
					log.Printf("gateway %d: downlink bad datr %q", id, tx.Datr)
					continue
				}
				switch fe.ClassifyDownlink(hz, dr) {
				case radio.WindowRX1:
					dl.rx1.Add(1)
				case radio.WindowRX2:
					dl.rx2.Add(1)
				default:
					dl.rejected.Add(1)
					log.Printf("gateway %d: downlink %v %s matches no receive window",
						id, hz, tx.Datr)
				}
			}
		}(i)
		gwUplinks(sim, gw, fwd, legacy, fe)
	}

	// Devices: node ids start at 1 so the derived DevAddrs and session
	// keys line up with alphawan-server's deterministic provisioning.
	// Devices transmit on the channels the fleet's front end monitors.
	channels := region.AS923.AllChannels()
	if !legacy {
		channels = fe.Channels()
	}
	var nodes []*node.Node
	for i := 0; i < *devices; i++ {
		nd := node.New(medium.NodeID(i+1), 1, lora.SyncPublic, phy.Pt(100+float64(i)*7, 50))
		nd.Channels = channels
		nd.DR = lora.DR(i % 6)
		nodes = append(nodes, nd)
		traffic.StartPoisson(med, nd, 0, des.FromDuration(*duration), 5*des.Second)
	}

	log.Printf("alphawan-gwsim: %d gateways (%s) → %s, %d devices, %v simulated",
		*gateways, *chipset, *server, *devices, *duration)
	sim.RunUntil(des.FromDuration(*duration) + des.Minute)
	log.Printf("alphawan-gwsim: done")
	// Give in-flight UDP pushes and downlinks a moment to drain.
	time.Sleep(500 * time.Millisecond)
	if n := dl.rx1.Load() + dl.rx2.Load() + dl.rejected.Load(); n > 0 {
		log.Printf("alphawan-gwsim: downlinks rx1=%d rx2=%d rejected=%d",
			dl.rx1.Load(), dl.rx2.Load(), dl.rejected.Load())
	}
}

// gwUplinks wires a gateway's decoded uplinks to its forwarder. Legacy
// mode pushes one rxpk per PUSH_DATA as decodes complete. Front-end mode
// models the HAL fetch: decodes accumulate in a pending buffer that a
// simulated poll flushes every 10 ms, at most fe.MaxRxPkt rxpks per
// datagram — bounding how many concurrently demodulated packets one
// fetch (and one datagram) can carry.
func gwUplinks(sim *des.Sim, gw *gateway.Gateway, fwd *udpfwd.Forwarder, legacy bool, fe radio.FrontEnd) {
	toRXPK := func(u gateway.Uplink) udpfwd.RXPK {
		return udpfwd.RXPK{
			Tmst: uint32(u.At), Freq: float64(u.TX.Channel.Center) / 1e6,
			Chan: u.Meta.Chain, Stat: 1, Modu: "LORA",
			Datr: udpfwd.DatrString(u.TX.DR), CodR: "4/5",
			RSSI: int(u.Meta.RSSIdBm), LSNR: u.Meta.SNRdB,
			Size: len(u.TX.Raw), Data: udpfwd.EncodeData(u.TX.Raw),
		}
	}
	if legacy {
		gw.Uplinks.Subscribe(func(u gateway.Uplink) {
			if err := fwd.Push([]udpfwd.RXPK{toRXPK(u)}, nil); err != nil {
				log.Printf("gateway %d: push failed: %v", u.GW.ID, err)
			}
		})
		return
	}
	var pending []udpfwd.RXPK
	gw.Uplinks.Subscribe(func(u gateway.Uplink) {
		pending = append(pending, toRXPK(u))
	})
	var poll func()
	poll = func() {
		for i := 0; i < len(pending); i += fe.MaxRxPkt {
			end := min(i+fe.MaxRxPkt, len(pending))
			if err := fwd.Push(pending[i:end:end], nil); err != nil {
				log.Printf("gateway %d: push failed: %v", gw.ID, err)
			}
		}
		pending = pending[:0]
		sim.At(sim.Now()+pollInterval, poll)
	}
	sim.At(pollInterval, poll)
}
