// Command alphawan-sim runs the paper-reproduction experiments by id and
// prints their tables, or traces the built-in coexistence scenario's
// packet lifecycle as JSONL.
//
// Usage:
//
//	alphawan-sim -list
//	alphawan-sim -run fig02a [-seed 1] [-csv]
//	alphawan-sim -run all [-parallel 8]
//	alphawan-sim -trace out.jsonl [-seed 1] [-progress]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/alphawan/alphawan/internal/events/sinks"
	"github.com/alphawan/alphawan/internal/experiments"
	"github.com/alphawan/alphawan/internal/metrics"
	"github.com/alphawan/alphawan/internal/runner"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids")
	run := flag.String("run", "", "experiment id to run, or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	parallel := flag.Int("parallel", 0,
		"worker cap for experiment cells: 0 = GOMAXPROCS (default), 1 = serial")
	trace := flag.String("trace", "",
		"write a packet-lifecycle JSONL trace of the built-in two-operator scenario to this file")
	progress := flag.Bool("progress", false,
		"with -trace: print periodic run-summary counters to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.Parse()

	if *parallel > 0 {
		runner.SetMaxWorkers(*parallel)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
			}
			f.Close()
		}()
	}

	switch {
	case *trace != "":
		runTrace(*trace, *seed, *progress)
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-8s  %s\n", e.ID, e.Title)
		}
	case *run == "all":
		for _, e := range experiments.All() {
			runOne(e, *seed, *csv)
		}
	case *run != "":
		e, ok := experiments.Get(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
			os.Exit(1)
		}
		runOne(e, *seed, *csv)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runTrace runs the built-in two-operator coexistence scenario with the
// packet-lifecycle tracer attached and prints the final loss breakdown.
func runTrace(path string, seed int64, progress bool) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(f)
	var prog *os.File
	if progress {
		prog = os.Stderr
	}
	n, tr := sinks.RunDemo(seed, w, prog)
	if err := tr.Err(); err == nil {
		err = w.Flush()
	} else {
		w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "alphawan-sim: trace write: %v\n", err)
		os.Exit(1)
	}
	tot := n.Col.Total()
	fmt.Printf("trace: %d records -> %s\n", tr.Records(), path)
	fmt.Printf("sent=%d received=%d PRR=%.1f%%\n", tot.Sent, tot.Received, 100*tot.PRR())
	for c := metrics.DecoderContentionIntra; c <= metrics.Others; c++ {
		fmt.Printf("  lost to %-26s %d\n", c.String()+":", tot.Losses[c])
	}
}

func runOne(e experiments.Experiment, seed int64, csv bool) {
	fmt.Printf("# %s — %s\n", e.ID, e.Title)
	fmt.Printf("# paper: %s\n", e.Paper)
	res := e.Run(seed)
	if csv {
		fmt.Print(res.Table.CSV())
	} else {
		fmt.Print(res.Table.String())
	}
	for _, n := range res.Notes {
		fmt.Printf("-> %s\n", n)
	}
	fmt.Println()
}
