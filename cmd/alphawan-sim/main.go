// Command alphawan-sim runs the paper-reproduction experiments by id and
// prints their tables, or traces the built-in coexistence scenario's
// packet lifecycle as JSONL.
//
// Usage:
//
//	alphawan-sim -list
//	alphawan-sim -run fig02a [-seed 1] [-csv]
//	alphawan-sim -run all [-parallel 8]
//	alphawan-sim -trace out.jsonl [-seed 1] [-progress] [-mac pure|slotted|capture]
//	alphawan-sim -faults plan.json [-trace out.jsonl] [-seed 1]
//	alphawan-sim -faults plan.json -adaptive [-replan-interval 3] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/events/sinks"
	"github.com/alphawan/alphawan/internal/experiments"
	"github.com/alphawan/alphawan/internal/faults"
	"github.com/alphawan/alphawan/internal/mac"
	"github.com/alphawan/alphawan/internal/metrics"
	"github.com/alphawan/alphawan/internal/runner"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids")
	run := flag.String("run", "", "experiment id to run, or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	parallel := flag.Int("parallel", 0,
		"worker cap for experiment cells: 0 = GOMAXPROCS (default), 1 = serial")
	trace := flag.String("trace", "",
		"write a packet-lifecycle JSONL trace of the built-in two-operator scenario to this file")
	faultsPlan := flag.String("faults", "",
		"inject the fault plan (JSON, see examples/faultplans) into the built-in scenario and report invariants")
	adaptive := flag.Bool("adaptive", false,
		"with -faults: run the planned two-gateway-per-operator scenario with the closed replanning loop attached (episode times become relative to traffic start)")
	replanInterval := flag.Float64("replan-interval", 3,
		"with -adaptive: control-loop tick interval in seconds")
	progress := flag.Bool("progress", false,
		"with -trace: print periodic run-summary counters to stderr")
	macFlag := flag.String("mac", "pure",
		"with -trace: MAC strategy of the built-in scenario (pure|slotted|capture)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.Parse()

	if *parallel > 0 {
		runner.SetMaxWorkers(*parallel)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
			}
			f.Close()
		}()
	}

	switch {
	case *faultsPlan != "" && *adaptive:
		runAdaptiveChaos(*faultsPlan, *seed, *replanInterval, *progress)
	case *faultsPlan != "":
		runChaos(*faultsPlan, *trace, *seed, *progress)
	case *trace != "":
		kind, err := mac.ParseKind(*macFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
			os.Exit(1)
		}
		runTrace(*trace, *seed, kind, *progress)
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-8s  %s\n", e.ID, e.Title)
		}
	case *run == "all":
		for _, e := range experiments.All() {
			runOne(e, *seed, *csv)
		}
	case *run != "":
		e, ok := experiments.Get(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
			os.Exit(1)
		}
		runOne(e, *seed, *csv)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runTrace runs the built-in two-operator coexistence scenario under the
// chosen MAC strategy with the packet-lifecycle tracer attached and
// prints the final loss breakdown.
func runTrace(path string, seed int64, kind mac.Kind, progress bool) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(f)
	var prog *os.File
	if progress {
		prog = os.Stderr
	}
	n, tr := sinks.RunDemoMAC(seed, kind, w, prog)
	if err := tr.Err(); err == nil {
		err = w.Flush()
	} else {
		w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "alphawan-sim: trace write: %v\n", err)
		os.Exit(1)
	}
	tot := n.Col.Total()
	fmt.Printf("trace: %d records -> %s\n", tr.Records(), path)
	fmt.Printf("sent=%d received=%d PRR=%.1f%%\n", tot.Sent, tot.Received, 100*tot.PRR())
	for c := metrics.DecoderContentionIntra; c <= metrics.Others; c++ {
		fmt.Printf("  lost to %-26s %d\n", c.String()+":", tot.Losses[c])
	}
}

// runChaos runs the built-in scenario with a fault plan injected,
// optionally tracing, and prints the episode schedule, the injector's
// intervention counters, the final loss breakdown, and the invariant
// verdict. A run with invariant violations exits non-zero.
func runChaos(planPath, tracePath string, seed int64, progress bool) {
	plan, err := faults.LoadPlan(planPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer
	var f *os.File
	var bw *bufio.Writer
	if tracePath != "" {
		f, err = os.Create(tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
			os.Exit(1)
		}
		bw = bufio.NewWriter(f)
		w = bw
	}
	var prog *os.File
	if progress {
		prog = os.Stderr
	}

	n, tr, inj, inv := sinks.RunChaosDemo(seed, plan, w, prog)

	if bw != nil {
		if err := tr.Err(); err == nil {
			err = bw.Flush()
		} else {
			bw.Flush()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "alphawan-sim: trace write: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d records -> %s\n", tr.Records(), tracePath)
	}

	fmt.Printf("fault plan: %s (%d episodes)\n", planPath, len(plan.Episodes))
	for i := range plan.Episodes {
		fmt.Printf("  %s\n", &plan.Episodes[i])
	}
	st := inj.Stats()
	fmt.Printf("injected: backhaul drop=%d dup=%d reorder=%d delayed=%d; commands drop=%d delayed=%d\n",
		st.BackhaulDropped, st.BackhaulDuplicated, st.BackhaulReordered, st.BackhaulDelayed,
		st.CommandsDropped, st.CommandsDelayed)

	tot := n.Col.Total()
	fmt.Printf("sent=%d received=%d PRR=%.1f%%\n", tot.Sent, tot.Received, 100*tot.PRR())
	for c := metrics.DecoderContentionIntra; c <= metrics.Others; c++ {
		fmt.Printf("  lost to %-26s %d\n", c.String()+":", tot.Losses[c])
	}

	violations := inv.Finish()
	if len(violations) == 0 {
		fmt.Printf("invariants: all held (%d transmissions checked)\n", inv.Started())
		return
	}
	fmt.Printf("invariants: %d VIOLATIONS\n", len(violations))
	for _, v := range violations {
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}

// runAdaptiveChaos runs the planned two-gateway-per-operator scenario
// with the fault plan injected and the closed replanning loop attached,
// then prints the episode schedule, each controller's replan record,
// the injector's counters, the final loss breakdown, and the invariant
// verdict (plan-swap safety included). A run with invariant violations
// exits non-zero.
func runAdaptiveChaos(planPath string, seed int64, intervalS float64, progress bool) {
	plan, err := faults.LoadPlan(planPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alphawan-sim: %v\n", err)
		os.Exit(1)
	}
	interval := des.Time(intervalS * float64(des.Second))
	if interval <= 0 {
		fmt.Fprintf(os.Stderr, "alphawan-sim: -replan-interval must be positive\n")
		os.Exit(1)
	}
	var prog *os.File
	if progress {
		prog = os.Stderr
	}

	n, inj, inv, ctrls := sinks.RunAdaptiveDemo(seed, plan, interval, prog)

	fmt.Printf("fault plan: %s (%d episodes, shifted to traffic start)\n", planPath, len(plan.Episodes))
	for i := range plan.Episodes {
		fmt.Printf("  %s\n", &plan.Episodes[i])
	}
	for i, ctrl := range ctrls {
		r, a, p := ctrl.Replans()
		fmt.Printf("operator %d: %d replans, %d adopted, %d genes pushed\n", i, r, a, p)
	}
	st := inj.Stats()
	fmt.Printf("injected: backhaul drop=%d dup=%d reorder=%d delayed=%d; commands drop=%d delayed=%d\n",
		st.BackhaulDropped, st.BackhaulDuplicated, st.BackhaulReordered, st.BackhaulDelayed,
		st.CommandsDropped, st.CommandsDelayed)

	tot := n.Col.Total()
	fmt.Printf("sent=%d received=%d PRR=%.1f%%\n", tot.Sent, tot.Received, 100*tot.PRR())
	for c := metrics.DecoderContentionIntra; c <= metrics.Others; c++ {
		fmt.Printf("  lost to %-26s %d\n", c.String()+":", tot.Losses[c])
	}

	violations := inv.Finish()
	if len(violations) == 0 {
		fmt.Printf("invariants: all held (%d transmissions checked)\n", inv.Started())
		return
	}
	fmt.Printf("invariants: %d VIOLATIONS\n", len(violations))
	for _, v := range violations {
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}

func runOne(e experiments.Experiment, seed int64, csv bool) {
	fmt.Printf("# %s — %s\n", e.ID, e.Title)
	fmt.Printf("# paper: %s\n", e.Paper)
	res := e.Run(seed)
	if csv {
		fmt.Print(res.Table.CSV())
	} else {
		fmt.Print(res.Table.String())
	}
	for _, n := range res.Notes {
		fmt.Printf("-> %s\n", n)
	}
	// Sidecar lines are wall-clock/host-bound observations: informative,
	// but excluded from the deterministic, seed-reproducible output above.
	for _, s := range res.Sidecar {
		fmt.Printf("~> %s\n", s)
	}
	fmt.Println()
}
