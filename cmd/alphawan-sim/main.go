// Command alphawan-sim runs the paper-reproduction experiments by id and
// prints their tables.
//
// Usage:
//
//	alphawan-sim -list
//	alphawan-sim -run fig02a [-seed 1] [-csv]
//	alphawan-sim -run all [-parallel 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/alphawan/alphawan/internal/experiments"
	"github.com/alphawan/alphawan/internal/runner"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids")
	run := flag.String("run", "", "experiment id to run, or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	parallel := flag.Int("parallel", 0,
		"worker cap for experiment cells: 0 = GOMAXPROCS (default), 1 = serial")
	flag.Parse()

	if *parallel > 0 {
		runner.SetMaxWorkers(*parallel)
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-8s  %s\n", e.ID, e.Title)
		}
	case *run == "all":
		for _, e := range experiments.All() {
			runOne(e, *seed, *csv)
		}
	case *run != "":
		e, ok := experiments.Get(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
			os.Exit(1)
		}
		runOne(e, *seed, *csv)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e experiments.Experiment, seed int64, csv bool) {
	fmt.Printf("# %s — %s\n", e.ID, e.Title)
	fmt.Printf("# paper: %s\n", e.Paper)
	res := e.Run(seed)
	if csv {
		fmt.Print(res.Table.CSV())
	} else {
		fmt.Print(res.Table.String())
	}
	for _, n := range res.Notes {
		fmt.Printf("-> %s\n", n)
	}
	fmt.Println()
}
