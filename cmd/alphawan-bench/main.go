// Command alphawan-bench times every registered experiment and writes a
// machine-readable BENCH_<n>.json (ns/op, allocs/op, bytes/op per
// experiment id) next to the working directory, picking the first unused
// n. Successive runs — e.g. before and after a change, or serial vs
// -parallel — therefore leave a comparable series of snapshots.
//
// Usage:
//
//	alphawan-bench [-seed 1] [-runs 1] [-parallel 8] [-only fig13,fig21] [-dir .]
//	alphawan-bench -only fig13 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"github.com/alphawan/alphawan/internal/experiments"
	"github.com/alphawan/alphawan/internal/runner"
)

// benchResult is one experiment's cost: wall-clock and heap churn, both
// averaged over the timed runs.
type benchResult struct {
	ID      string `json:"id"`
	Runs    int    `json:"runs"`
	NsPerOp int64  `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp count heap allocations (mallocs) and
	// allocated bytes per run, measured from runtime.MemStats deltas —
	// the same quantities `go test -benchmem` reports.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// benchFile is the BENCH_<n>.json schema.
type benchFile struct {
	Timestamp  string        `json:"timestamp"`
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"` // 0 = GOMAXPROCS default
	Seed       int64         `json:"seed"`
	Results    []benchResult `json:"results"`
}

// selectExperiments filters all down to the requested comma-separated ids
// (empty selects everything), preserving registration order. Ids not
// matching any experiment come back in unknown, sorted.
func selectExperiments(all []experiments.Experiment, only string) (todo []experiments.Experiment, unknown []string) {
	sel := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			sel[id] = true
		}
	}
	pick := len(sel) == 0
	for _, e := range all {
		if pick || sel[e.ID] {
			todo = append(todo, e)
			delete(sel, e.ID)
		}
	}
	for id := range sel {
		unknown = append(unknown, id)
	}
	sort.Strings(unknown)
	return todo, unknown
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	runs := flag.Int("runs", 1, "timed runs per experiment (per-op columns average over them)")
	parallel := flag.Int("parallel", 0,
		"worker cap for experiment cells: 0 = GOMAXPROCS (default), 1 = serial")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	dir := flag.String("dir", ".", "directory to write BENCH_<n>.json into")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the timed runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the timed runs to this file")
	flag.Parse()

	if *runs < 1 {
		*runs = 1
	}
	if *parallel > 0 {
		runner.SetMaxWorkers(*parallel)
	}

	todo, unknown := selectExperiments(experiments.All(), *only)
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment ids: %s; try alphawan-sim -list\n",
			strings.Join(unknown, ", "))
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	out := benchFile{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *parallel,
		Seed:       *seed,
	}
	var ms0, ms1 runtime.MemStats
	for _, e := range todo {
		var total time.Duration
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for r := 0; r < *runs; r++ {
			e.Run(*seed)
		}
		total = time.Since(t0)
		runtime.ReadMemStats(&ms1)
		n := int64(*runs)
		res := benchResult{
			ID: e.ID, Runs: *runs,
			NsPerOp:     total.Nanoseconds() / n,
			AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / n,
			BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / n,
		}
		out.Results = append(out.Results, res)
		fmt.Printf("%-14s %12d ns/op %14d B/op %12d allocs/op  (%s)\n",
			res.ID, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp,
			time.Duration(res.NsPerOp).Round(time.Millisecond))
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}

	path, err := nextBenchPath(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n ≥ 1 that
// does not exist yet.
func nextBenchPath(dir string) (string, error) {
	for n := 1; n < 10000; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("no free BENCH_<n>.json slot in %s", dir)
}
