// Command alphawan-bench times every registered experiment and writes a
// machine-readable BENCH_<n>.json (ns/op, allocs/op, bytes/op per
// experiment id) next to the working directory, picking the first unused
// n. Successive runs — e.g. before and after a change, or serial vs
// -parallel — therefore leave a comparable series of snapshots.
//
// Usage:
//
//	alphawan-bench [-seed 1] [-runs 1] [-parallel 8] [-only fig13,fig21] [-dir .]
//	alphawan-bench -only fig13 -cpuprofile cpu.pprof -memprofile mem.pprof
//	alphawan-bench -compare BENCH_2.json BENCH_3.json [-regress 5]
//
// The -compare form runs no experiments: it diffs two existing snapshots
// per experiment id and exits 1 if any ns/op regressed more than -regress
// percent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/alphawan/alphawan/internal/experiments"
	"github.com/alphawan/alphawan/internal/liveload"
	"github.com/alphawan/alphawan/internal/runner"
)

// benchResult is one experiment's cost: wall-clock and heap churn, both
// averaged over the timed runs.
type benchResult struct {
	ID      string `json:"id"`
	Runs    int    `json:"runs"`
	NsPerOp int64  `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp count heap allocations (mallocs) and
	// allocated bytes per run, measured from runtime.MemStats deltas —
	// the same quantities `go test -benchmem` reports.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Devices is the simulated end-device population when the experiment
	// reports one (the city-scale runs); the derived throughput and
	// footprint columns below divide by it.
	Devices        int     `json:"devices,omitempty"`
	DevicesPerSec  float64 `json:"devices_per_sec,omitempty"`
	BytesPerDevice int64   `json:"bytes_per_device,omitempty"`
	// Candidates and SolveNs come from experiments that measure the CP
	// solver (cp-eval/cp-rescore, fig17): candidates scored and the
	// measured scoring/solve wall-clock inside the last run, from which
	// the candidates/sec throughput column derives.
	Candidates       int     `json:"candidates,omitempty"`
	SolveNs          int64   `json:"solve_ns,omitempty"`
	CandidatesPerSec float64 `json:"candidates_per_sec,omitempty"`
	// PeakRSSBytes is the process's high-water resident set (VmHWM) after
	// the timed runs — only meaningful with -isolate, where the child
	// process ran exactly one experiment. 0 when unavailable.
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
	// Live-load rows (-live) additionally report the sustained uplink
	// rate, send-to-delivery latency quantiles, the offered load they
	// were measured under, and the loss counters. NsPerOp on these rows
	// is 1e9/PacketsPerSec, so the ordinary -regress gate covers them.
	PacketsPerSec float64 `json:"packets_per_sec,omitempty"`
	P50Us         float64 `json:"p50_us,omitempty"`
	P99Us         float64 `json:"p99_us,omitempty"`
	OfferedPPS    int     `json:"offered_pps,omitempty"`
	Drops         int64   `json:"drops,omitempty"`
	OverloadDrops int64   `json:"overload_drops,omitempty"`
}

// benchFile is the BENCH_<n>.json schema.
type benchFile struct {
	Timestamp  string        `json:"timestamp"`
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"` // 0 = GOMAXPROCS default
	Seed       int64         `json:"seed"`
	Results    []benchResult `json:"results"`
}

// selectExperiments filters all down to the requested comma-separated ids
// (empty selects everything), preserving registration order. Ids not
// matching any experiment come back in unknown, sorted.
func selectExperiments(all []experiments.Experiment, only string) (todo []experiments.Experiment, unknown []string) {
	sel := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			sel[id] = true
		}
	}
	pick := len(sel) == 0
	for _, e := range all {
		if pick || sel[e.ID] {
			todo = append(todo, e)
			delete(sel, e.ID)
		}
	}
	for id := range sel {
		unknown = append(unknown, id)
	}
	sort.Strings(unknown)
	return todo, unknown
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	runs := flag.Int("runs", 1, "minimum timed runs per experiment (per-op columns average over them)")
	mintime := flag.Duration("mintime", 200*time.Millisecond,
		"keep re-running an experiment until its timed window reaches this long "+
			"(like go test -benchtime); the microsecond-scale experiments are "+
			"unmeasurable from a single run")
	parallel := flag.Int("parallel", 0,
		"worker cap for experiment cells: 0 = GOMAXPROCS (default), 1 = serial")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	dir := flag.String("dir", ".", "directory to write BENCH_<n>.json into")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the timed runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the timed runs to this file")
	compare := flag.String("compare", "",
		"old BENCH_<n>.json to diff against; the new snapshot is the positional argument")
	regress := flag.Float64("regress", 5,
		"with -compare: exit non-zero if any experiment's ns/op regressed by more than this percent")
	isolate := flag.Bool("isolate", true,
		"measure each experiment in its own child process so one experiment's "+
			"heap cannot skew another's timing (off when profiling)")
	speedup := flag.Float64("speedup", 0,
		"with -compare: require the new snapshot's live-load packets/sec to be "+
			"at least this multiple of the old snapshot's (0 = no check)")
	live := flag.Bool("live", false,
		"run the live-stack UDP load benchmark instead of the experiments")
	liveMode := flag.String("live-mode", "both",
		"live ingest paths to measure: both, serial, or batched")
	livePPS := flag.Int("live-pps", 100_000, "live offered load, uplink frames per second")
	liveDuration := flag.Duration("live-duration", 2*time.Second, "live send window")
	liveDevices := flag.Int("live-devices", 64, "live provisioned device sessions")
	liveWorkers := flag.Int("live-workers", 0, "batched bridge parse workers (0 = default)")
	liveRxpks := flag.Int("live-rxpks", 8, "uplinks per PUSH_DATA datagram (MAX_RX_PKT)")
	liveMinSpeedup := flag.Float64("live-min-speedup", 0,
		"with -live-mode both: exit non-zero unless batched sustains at least "+
			"this multiple of serial packets/sec (0 = no check)")
	liveRetries := flag.Int("live-retries", 1,
		"attempts at clearing -live-min-speedup before failing (best ratio wins; "+
			"shared-runner throughput is noisy)")
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: alphawan-bench -compare OLD.json NEW.json")
			os.Exit(2)
		}
		os.Exit(runCompare(*compare, flag.Arg(0), *regress, *speedup))
	}

	if *live {
		rows, err := runLive(*liveMode, liveload.Config{
			Devices:    *liveDevices,
			OfferedPPS: *livePPS,
			Duration:   *liveDuration,
			Workers:    *liveWorkers,
			Rxpks:      *liveRxpks,
		}, *liveMinSpeedup, *liveRetries)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out := benchFile{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoOS:       runtime.GOOS,
			GoArch:     runtime.GOARCH,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Seed:       *seed,
			Results:    rows,
		}
		writeBenchFile(*dir, out)
		return
	}

	if *runs < 1 {
		*runs = 1
	}
	if *parallel > 0 {
		runner.SetMaxWorkers(*parallel)
	}

	todo, unknown := selectExperiments(experiments.All(), *only)
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment ids: %s; try alphawan-sim -list\n",
			strings.Join(unknown, ", "))
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	out := benchFile{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *parallel,
		Seed:       *seed,
	}
	// Each experiment is measured in a child process unless we are that
	// child (or profiling, which needs one process for the whole profile):
	// a multi-gigabyte experiment leaves heap state — GC pacing, sweep
	// debt, fragmentation, scavenged pages — that measurably skews the
	// millisecond-scale experiments that follow it in the same process.
	inProcess := !*isolate || *cpuprofile != "" || *memprofile != "" || len(todo) == 1
	var exe string
	if !inProcess {
		var err error
		if exe, err = os.Executable(); err != nil {
			fmt.Fprintf(os.Stderr, "cannot isolate (%v); measuring in-process\n", err)
			inProcess = true
		}
	}
	for _, e := range todo {
		var res benchResult
		if inProcess {
			res = measure(e, *seed, *runs, *mintime)
		} else {
			r, err := measureIsolated(exe, e.ID, *seed, *runs, *mintime, *parallel)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
			res = r
		}
		out.Results = append(out.Results, res)
		fmt.Printf("%-14s %12d ns/op %14d B/op %12d allocs/op  (%s)\n",
			res.ID, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp,
			time.Duration(res.NsPerOp).Round(time.Millisecond))
		if res.Devices > 0 {
			fmt.Printf("%-14s %12d devices %10.0f devices/sec %8d B/device  peak RSS %d MiB\n",
				"", res.Devices, res.DevicesPerSec, res.BytesPerDevice, res.PeakRSSBytes>>20)
		}
		if res.CandidatesPerSec > 0 {
			fmt.Printf("%-14s %12d candidates %8.0f candidates/sec  solve %s\n",
				"", res.Candidates, res.CandidatesPerSec,
				time.Duration(res.SolveNs).Round(time.Millisecond))
		} else if res.SolveNs > 0 {
			fmt.Printf("%-14s %12s solve %s wall-clock\n",
				"", "", time.Duration(res.SolveNs).Round(time.Millisecond))
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}

	writeBenchFile(*dir, out)
}

// writeBenchFile stores the snapshot in the next free BENCH_<n>.json slot,
// exiting the process on any failure.
func writeBenchFile(dir string, out benchFile) {
	path, err := nextBenchPath(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// measure times one experiment in this process: at least runs runs and at
// least mintime of timed window, doubling the batch while short, so a
// 10 µs experiment averages over thousands of runs and a 10 s one is
// timed once.
func measure(e experiments.Experiment, seed int64, runs int, mintime time.Duration) benchResult {
	// Collect before the timed window so startup garbage cannot charge its
	// GC cost to the experiment. The second call matters: sweeping is lazy
	// and billed to subsequent allocations, so a single GC would leave its
	// sweep debt inside the timed window; starting another cycle forces
	// that sweep to finish first.
	runtime.GC()
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	done, batch := 0, runs
	devices, candidates := 0, 0
	var solveNs int64
	var total time.Duration
	t0 := time.Now()
	for {
		for r := 0; r < batch; r++ {
			out := e.Run(seed)
			devices, candidates, solveNs = out.Devices, out.Candidates, out.SolveNs
		}
		done += batch
		total = time.Since(t0)
		if total >= mintime {
			break
		}
		batch = done
	}
	runtime.ReadMemStats(&ms1)
	n := int64(done)
	res := benchResult{
		ID: e.ID, Runs: done,
		NsPerOp:      total.Nanoseconds() / n,
		AllocsPerOp:  int64(ms1.Mallocs-ms0.Mallocs) / n,
		BytesPerOp:   int64(ms1.TotalAlloc-ms0.TotalAlloc) / n,
		PeakRSSBytes: peakRSS(),
	}
	if devices > 0 {
		res.Devices = devices
		res.DevicesPerSec = float64(devices) / (float64(res.NsPerOp) / 1e9)
		res.BytesPerDevice = res.BytesPerOp / int64(devices)
	}
	if solveNs > 0 {
		res.SolveNs = solveNs
		if candidates > 0 {
			res.Candidates = candidates
			res.CandidatesPerSec = float64(candidates) / (float64(solveNs) / 1e9)
		}
	}
	return res
}

// peakRSS reads the process's resident-set high-water mark (VmHWM) from
// /proc/self/status, in bytes. Returns 0 where procfs is unavailable.
func peakRSS() int64 {
	buf, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(buf), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// measureIsolated re-execs this binary for a single experiment id and
// reads the child's snapshot back. The child takes the in-process path
// (len(todo) == 1) and starts from a pristine heap.
func measureIsolated(exe, id string, seed int64, runs int, mintime time.Duration, parallel int) (benchResult, error) {
	tmp, err := os.MkdirTemp("", "alphawan-bench-")
	if err != nil {
		return benchResult{}, err
	}
	defer os.RemoveAll(tmp)
	cmd := exec.Command(exe,
		"-only", id,
		fmt.Sprintf("-seed=%d", seed),
		fmt.Sprintf("-runs=%d", runs),
		fmt.Sprintf("-mintime=%s", mintime),
		fmt.Sprintf("-parallel=%d", parallel),
		"-dir", tmp)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return benchResult{}, err
	}
	bf, err := readBenchFile(filepath.Join(tmp, "BENCH_1.json"))
	if err != nil {
		return benchResult{}, err
	}
	if len(bf.Results) != 1 || bf.Results[0].ID != id {
		return benchResult{}, fmt.Errorf("child snapshot does not hold exactly %s", id)
	}
	return bf.Results[0], nil
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n ≥ 1 that
// does not exist yet.
func nextBenchPath(dir string) (string, error) {
	for n := 1; n < 10000; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("no free BENCH_<n>.json slot in %s", dir)
}
