// Command alphawan-bench times every registered experiment and writes a
// machine-readable BENCH_<n>.json (ns/op per experiment id) next to the
// working directory, picking the first unused n. Successive runs — e.g.
// before and after a change, or serial vs -parallel — therefore leave a
// comparable series of snapshots.
//
// Usage:
//
//	alphawan-bench [-seed 1] [-runs 1] [-parallel 8] [-only fig13,fig21] [-dir .]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/alphawan/alphawan/internal/experiments"
	"github.com/alphawan/alphawan/internal/runner"
)

// benchResult is one experiment's timing.
type benchResult struct {
	ID      string `json:"id"`
	Runs    int    `json:"runs"`
	NsPerOp int64  `json:"ns_per_op"`
}

// benchFile is the BENCH_<n>.json schema.
type benchFile struct {
	Timestamp  string        `json:"timestamp"`
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"` // 0 = GOMAXPROCS default
	Seed       int64         `json:"seed"`
	Results    []benchResult `json:"results"`
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	runs := flag.Int("runs", 1, "timed runs per experiment (ns/op averages over them)")
	parallel := flag.Int("parallel", 0,
		"worker cap for experiment cells: 0 = GOMAXPROCS (default), 1 = serial")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	dir := flag.String("dir", ".", "directory to write BENCH_<n>.json into")
	flag.Parse()

	if *runs < 1 {
		*runs = 1
	}
	if *parallel > 0 {
		runner.SetMaxWorkers(*parallel)
	}

	sel := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			sel[id] = true
		}
	}
	var todo []experiments.Experiment
	for _, e := range experiments.All() {
		if len(sel) == 0 || sel[e.ID] {
			todo = append(todo, e)
			delete(sel, e.ID)
		}
	}
	if len(sel) > 0 {
		ids := make([]string, 0, len(sel))
		for id := range sel {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(os.Stderr, "unknown experiment ids: %s; try alphawan-sim -list\n",
			strings.Join(ids, ", "))
		os.Exit(1)
	}

	out := benchFile{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *parallel,
		Seed:       *seed,
	}
	for _, e := range todo {
		var total time.Duration
		for r := 0; r < *runs; r++ {
			t0 := time.Now()
			e.Run(*seed)
			total += time.Since(t0)
		}
		ns := total.Nanoseconds() / int64(*runs)
		out.Results = append(out.Results, benchResult{ID: e.ID, Runs: *runs, NsPerOp: ns})
		fmt.Printf("%-14s %12d ns/op  (%s)\n", e.ID, ns, time.Duration(ns).Round(time.Millisecond))
	}

	path, err := nextBenchPath(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n ≥ 1 that
// does not exist yet.
func nextBenchPath(dir string) (string, error) {
	for n := 1; n < 10000; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("no free BENCH_<n>.json slot in %s", dir)
}
