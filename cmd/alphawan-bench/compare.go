package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Snapshot comparison: `alphawan-bench -compare OLD.json NEW.json` prints
// per-experiment ns/op and allocs/op deltas between two BENCH_<n>.json
// files and exits non-zero when any experiment's ns/op regressed past the
// -regress threshold — the check CI and the "Profiling a run" workflow
// use to keep the suite from drifting slower unnoticed.

// compareRow is one experiment's delta between two snapshots.
type compareRow struct {
	ID          string
	OldNs       int64
	NewNs       int64
	NsDelta     float64 // percent; negative = faster
	OldAllocs   int64
	NewAllocs   int64
	AllocsDelta float64 // percent; negative = fewer
	// Live-load rows additionally carry throughput and tail latency.
	// Live is true when both snapshots reported packets_per_sec.
	Live               bool
	OldPPS, NewPPS     float64
	OldP99Us, NewP99Us float64
	P99Delta           float64 // percent; positive = slower tail
}

// deltaPct returns the relative change new-vs-old in percent. A zero old
// value yields 0 when new is also zero, else +100 (treat appearing cost as
// a full regression rather than dividing by zero).
func deltaPct(old, new int64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return 100 * (float64(new) - float64(old)) / float64(old)
}

// compareBench matches the two snapshots' results by experiment id (in the
// old file's order) and flags every row whose ns/op grew by more than
// regressPct. Ids present in only one snapshot are returned separately and
// never flagged.
func compareBench(old, new benchFile, regressPct float64) (rows []compareRow, regressions, unmatched []string) {
	newByID := make(map[string]benchResult, len(new.Results))
	for _, r := range new.Results {
		newByID[r.ID] = r
	}
	seen := make(map[string]bool, len(old.Results))
	for _, o := range old.Results {
		seen[o.ID] = true
		n, ok := newByID[o.ID]
		if !ok {
			unmatched = append(unmatched, o.ID+" (old only)")
			continue
		}
		row := compareRow{
			ID:          o.ID,
			OldNs:       o.NsPerOp,
			NewNs:       n.NsPerOp,
			NsDelta:     deltaPct(o.NsPerOp, n.NsPerOp),
			OldAllocs:   o.AllocsPerOp,
			NewAllocs:   n.AllocsPerOp,
			AllocsDelta: deltaPct(o.AllocsPerOp, n.AllocsPerOp),
		}
		if o.PacketsPerSec > 0 && n.PacketsPerSec > 0 {
			row.Live = true
			row.OldPPS, row.NewPPS = o.PacketsPerSec, n.PacketsPerSec
			row.OldP99Us, row.NewP99Us = o.P99Us, n.P99Us
			if o.P99Us > 0 {
				row.P99Delta = 100 * (n.P99Us - o.P99Us) / o.P99Us
			}
		}
		rows = append(rows, row)
		if row.NsDelta > regressPct {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op +%.1f%%", o.ID, row.NsDelta))
		}
		// ns/op on live rows is 1e9/pps, so the check above already gates
		// throughput; the tail latency needs its own gate.
		if row.Live && row.P99Delta > regressPct {
			regressions = append(regressions, fmt.Sprintf("%s: p99 +%.1f%%", o.ID, row.P99Delta))
		}
	}
	for _, n := range new.Results {
		if !seen[n.ID] {
			unmatched = append(unmatched, n.ID+" (new only)")
		}
	}
	sort.Strings(unmatched)
	return rows, regressions, unmatched
}

// printCompare renders the comparison table plus totals and any
// unmatched-id notes.
func printCompare(w io.Writer, rows []compareRow, unmatched []string) {
	fmt.Fprintf(w, "%-14s %14s %14s %8s %14s %14s %8s\n",
		"experiment", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")
	var oldNs, newNs, oldAl, newAl int64
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %14d %14d %7.1f%% %14d %14d %7.1f%%\n",
			r.ID, r.OldNs, r.NewNs, r.NsDelta, r.OldAllocs, r.NewAllocs, r.AllocsDelta)
		oldNs += r.OldNs
		newNs += r.NewNs
		oldAl += r.OldAllocs
		newAl += r.NewAllocs
	}
	if len(rows) > 1 {
		fmt.Fprintf(w, "%-14s %14d %14d %7.1f%% %14d %14d %7.1f%%\n",
			"TOTAL", oldNs, newNs, deltaPct(oldNs, newNs), oldAl, newAl, deltaPct(oldAl, newAl))
	}
	// Live-load rows get a throughput/tail table of their own.
	header := false
	for _, r := range rows {
		if !r.Live {
			continue
		}
		if !header {
			header = true
			fmt.Fprintf(w, "%-16s %12s %12s %8s %12s %12s %8s\n",
				"live", "old pps", "new pps", "Δpps", "old p99 µs", "new p99 µs", "Δp99")
		}
		ppsDelta := 0.0
		if r.OldPPS > 0 {
			ppsDelta = 100 * (r.NewPPS - r.OldPPS) / r.OldPPS
		}
		fmt.Fprintf(w, "%-16s %12.0f %12.0f %7.1f%% %12.0f %12.0f %7.1f%%\n",
			r.ID, r.OldPPS, r.NewPPS, ppsDelta, r.OldP99Us, r.NewP99Us, r.P99Delta)
	}
	for _, u := range unmatched {
		fmt.Fprintf(w, "# unmatched: %s\n", u)
	}
}

// livePPS extracts a snapshot's live-load throughput for the -speedup
// check, preferring the batched row ("live-load") and falling back to the
// serial one so a serial-only baseline snapshot still compares.
func livePPS(bf benchFile) (float64, string, bool) {
	for _, id := range []string{"live-load", "live-load-serial"} {
		for _, r := range bf.Results {
			if r.ID == id && r.PacketsPerSec > 0 {
				return r.PacketsPerSec, id, true
			}
		}
	}
	return 0, "", false
}

// readBenchFile loads one BENCH_<n>.json snapshot.
func readBenchFile(path string) (benchFile, error) {
	var bf benchFile
	buf, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(buf, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	return bf, nil
}

// runCompare implements the -compare mode; it returns the process exit
// code (1 = regression past threshold, speedup floor missed, or
// unreadable input).
func runCompare(oldPath, newPath string, regressPct, speedup float64) int {
	old, err := readBenchFile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	new, err := readBenchFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rows, regressions, unmatched := compareBench(old, new, regressPct)
	printCompare(os.Stdout, rows, unmatched)
	code := 0
	if speedup > 0 {
		oldPPS, oldID, okOld := livePPS(old)
		newPPS, newID, okNew := livePPS(new)
		if !okOld || !okNew {
			fmt.Fprintln(os.Stderr, "-speedup: both snapshots need a live-load row with packets_per_sec")
			return 1
		}
		ratio := newPPS / oldPPS
		fmt.Printf("# speedup: %s %.0f pps → %s %.0f pps = %.2fx (floor %.1fx)\n",
			oldID, oldPPS, newID, newPPS, ratio, speedup)
		if ratio < speedup {
			fmt.Fprintf(os.Stderr, "live-load speedup %.2fx below the %.1fx floor\n", ratio, speedup)
			code = 1
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "regression threshold %.1f%% exceeded:\n", regressPct)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	return code
}
