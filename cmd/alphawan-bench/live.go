package main

import (
	"fmt"
	"runtime"
	"time"

	"github.com/alphawan/alphawan/internal/liveload"
)

// Live-stack load benchmark: `alphawan-bench -live` drives pre-encoded
// uplinks over real UDP into the packet-forwarder bridge + network server
// and reports sustained packets/sec, p50/p99 latency, and loss counters
// as BENCH rows — id "live-load" for the batched/sharded path, id
// "live-load-serial" for the legacy single-goroutine path. Both ids carry
// NsPerOp = 1e9/pps so the ordinary -compare -regress gate covers
// throughput drift, and the extra packets_per_sec / p99_us fields feed
// the live columns of the compare table.

// liveID maps a liveload mode to its bench row id.
func liveID(mode string) string {
	if mode == liveload.ModeSerial {
		return "live-load-serial"
	}
	return "live-load"
}

// runLiveMode executes one mode and converts the measurement to a bench
// row.
func runLiveMode(cfg liveload.Config) (benchResult, error) {
	res, err := liveload.Run(cfg)
	if err != nil {
		return benchResult{}, err
	}
	if res.Delivered == 0 {
		return benchResult{}, fmt.Errorf("live-load %s: nothing delivered (offered %d pps)",
			cfg.Mode, cfg.OfferedPPS)
	}
	row := benchResult{
		ID:            liveID(cfg.Mode),
		Runs:          1,
		NsPerOp:       int64(1e9 / res.PPS),
		AllocsPerOp:   int64(res.AllocsPerUplink + 0.5),
		BytesPerOp:    int64(res.BytesPerUplink + 0.5),
		PacketsPerSec: res.PPS,
		P50Us:         float64(res.P50.Nanoseconds()) / 1e3,
		P99Us:         float64(res.P99.Nanoseconds()) / 1e3,
		OfferedPPS:    res.OfferedPPS,
		Drops:         res.Drops,
		OverloadDrops: res.OverloadDrops,
		PeakRSSBytes:  peakRSS(),
	}
	return row, nil
}

// runLiveOnce measures the requested live modes ("serial", "batched", or
// "both") and reports the batched-over-serial throughput ratio (0 unless
// both modes ran).
func runLiveOnce(mode string, cfg liveload.Config) ([]benchResult, float64, error) {
	var modes []string
	switch mode {
	case "both":
		modes = []string{liveload.ModeSerial, liveload.ModeBatched}
	case liveload.ModeSerial, liveload.ModeBatched:
		modes = []string{mode}
	default:
		return nil, 0, fmt.Errorf("-live-mode %q: want both, serial, or batched", mode)
	}
	byMode := map[string]benchResult{}
	var rows []benchResult
	for _, m := range modes {
		c := cfg
		c.Mode = m
		// Settle between runs so one mode's heap and socket state cannot
		// charge the other.
		runtime.GC()
		time.Sleep(100 * time.Millisecond)
		row, err := runLiveMode(c)
		if err != nil {
			return nil, 0, err
		}
		byMode[m] = row
		rows = append(rows, row)
		fmt.Printf("%-16s %10.0f pkts/sec  p50 %8.0f µs  p99 %8.0f µs  offered %d pps  drops %d (overload %d)\n",
			row.ID, row.PacketsPerSec, row.P50Us, row.P99Us,
			row.OfferedPPS, row.Drops, row.OverloadDrops)
	}
	ratio := 0.0
	if s, ok := byMode[liveload.ModeSerial]; ok {
		if b, ok := byMode[liveload.ModeBatched]; ok {
			ratio = b.PacketsPerSec / s.PacketsPerSec
			fmt.Printf("%-16s %10.2fx batched over serial\n", "speedup", ratio)
		}
	}
	return rows, ratio, nil
}

// runLive runs the live measurement up to `retries` times and enforces
// the optional speedup floor of batched over serial. Throughput on a
// shared CI box is noisy — the serial mode's reflection-heavy parsing is
// especially GC- and neighbor-sensitive — so the gate is best-of-N: one
// clean attempt proving the floor is evidence the speedup exists, while a
// single slow neighbor window is not evidence it doesn't. The attempt
// with the best ratio is the one reported.
func runLive(mode string, cfg liveload.Config, minSpeedup float64, retries int) ([]benchResult, error) {
	if retries < 1 {
		retries = 1
	}
	if minSpeedup > 0 && mode != "both" {
		return nil, fmt.Errorf("-live-min-speedup needs -live-mode both")
	}
	var best []benchResult
	bestRatio := -1.0
	for attempt := 1; ; attempt++ {
		rows, ratio, err := runLiveOnce(mode, cfg)
		if err != nil {
			return nil, err
		}
		if ratio > bestRatio {
			best, bestRatio = rows, ratio
		}
		if minSpeedup <= 0 || bestRatio >= minSpeedup {
			break
		}
		if attempt >= retries {
			return nil, fmt.Errorf("live-load speedup %.2fx below the %.1fx floor after %d attempts",
				bestRatio, minSpeedup, attempt)
		}
		fmt.Printf("# attempt %d/%d: %.2fx below the %.1fx floor, retrying\n",
			attempt, retries, ratio, minSpeedup)
	}
	return best, nil
}
