package main

import (
	"reflect"
	"testing"

	"github.com/alphawan/alphawan/internal/experiments"
)

func ids(es []experiments.Experiment) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

func TestSelectExperiments(t *testing.T) {
	all := []experiments.Experiment{{ID: "fig02a"}, {ID: "fig13"}, {ID: "fig21"}}

	todo, unknown := selectExperiments(all, "")
	if len(unknown) != 0 || !reflect.DeepEqual(ids(todo), []string{"fig02a", "fig13", "fig21"}) {
		t.Fatalf("empty -only must select all in order: %v / %v", ids(todo), unknown)
	}

	todo, unknown = selectExperiments(all, " fig21 ,fig02a")
	if len(unknown) != 0 || !reflect.DeepEqual(ids(todo), []string{"fig02a", "fig21"}) {
		t.Fatalf("selection must trim spaces and keep registration order: %v / %v", ids(todo), unknown)
	}

	_, unknown = selectExperiments(all, "fig13,figZZ,figAA")
	if !reflect.DeepEqual(unknown, []string{"figAA", "figZZ"}) {
		t.Fatalf("typo ids must be reported sorted (so the run exits non-zero): %v", unknown)
	}
}

// TestAllRegisteredIDsSelectable guards the bench CLI against drift from
// the experiment registry: every registered id must round-trip through
// -only with nothing reported unknown.
func TestAllRegisteredIDsSelectable(t *testing.T) {
	all := experiments.All()
	for _, e := range all {
		if _, unknown := selectExperiments(all, e.ID); len(unknown) != 0 {
			t.Errorf("id %q reported unknown: %v", e.ID, unknown)
		}
	}
}
