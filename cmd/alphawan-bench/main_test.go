package main

import (
	"reflect"
	"testing"

	"github.com/alphawan/alphawan/internal/experiments"
)

func ids(es []experiments.Experiment) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

func TestSelectExperiments(t *testing.T) {
	all := []experiments.Experiment{{ID: "fig02a"}, {ID: "fig13"}, {ID: "fig21"}}

	todo, unknown := selectExperiments(all, "")
	if len(unknown) != 0 || !reflect.DeepEqual(ids(todo), []string{"fig02a", "fig13", "fig21"}) {
		t.Fatalf("empty -only must select all in order: %v / %v", ids(todo), unknown)
	}

	todo, unknown = selectExperiments(all, " fig21 ,fig02a")
	if len(unknown) != 0 || !reflect.DeepEqual(ids(todo), []string{"fig02a", "fig21"}) {
		t.Fatalf("selection must trim spaces and keep registration order: %v / %v", ids(todo), unknown)
	}

	_, unknown = selectExperiments(all, "fig13,figZZ,figAA")
	if !reflect.DeepEqual(unknown, []string{"figAA", "figZZ"}) {
		t.Fatalf("typo ids must be reported sorted (so the run exits non-zero): %v", unknown)
	}
}

// TestAllRegisteredIDsSelectable guards the bench CLI against drift from
// the experiment registry: every registered id must round-trip through
// -only with nothing reported unknown.
func TestAllRegisteredIDsSelectable(t *testing.T) {
	all := experiments.All()
	for _, e := range all {
		if _, unknown := selectExperiments(all, e.ID); len(unknown) != 0 {
			t.Errorf("id %q reported unknown: %v", e.ID, unknown)
		}
	}
}

func TestDeltaPct(t *testing.T) {
	cases := []struct {
		old, new int64
		want     float64
	}{
		{100, 150, 50},
		{200, 100, -50},
		{100, 100, 0},
		{0, 0, 0},
		{0, 7, 100},
	}
	for _, c := range cases {
		if got := deltaPct(c.old, c.new); got != c.want {
			t.Errorf("deltaPct(%d, %d) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}

func TestCompareBench(t *testing.T) {
	old := benchFile{Results: []benchResult{
		{ID: "fig13", NsPerOp: 1000, AllocsPerOp: 500},
		{ID: "fig21", NsPerOp: 2000, AllocsPerOp: 800},
		{ID: "fig22", NsPerOp: 300, AllocsPerOp: 10},
	}}
	new := benchFile{Results: []benchResult{
		{ID: "fig13", NsPerOp: 900, AllocsPerOp: 200},  // faster, fewer allocs
		{ID: "fig21", NsPerOp: 2200, AllocsPerOp: 800}, // +10% ns regression
		{ID: "fig23", NsPerOp: 50, AllocsPerOp: 1},     // new-only id
	}}

	rows, regressions, unmatched := compareBench(old, new, 5)
	if !reflect.DeepEqual(ids2(rows), []string{"fig13", "fig21"}) {
		t.Fatalf("rows must match by id in old order: %v", ids2(rows))
	}
	if rows[0].NsDelta != -10 || rows[0].AllocsDelta != -60 {
		t.Errorf("fig13 deltas = %v%% ns, %v%% allocs; want -10, -60",
			rows[0].NsDelta, rows[0].AllocsDelta)
	}
	if len(regressions) != 1 || regressions[0] != "fig21: ns/op +10.0%" {
		t.Errorf("regressions = %v, want exactly fig21 at +10%%", regressions)
	}
	if !reflect.DeepEqual(unmatched, []string{"fig22 (old only)", "fig23 (new only)"}) {
		t.Errorf("unmatched = %v", unmatched)
	}

	// A looser threshold lets the same 10% regression pass.
	if _, regressions, _ := compareBench(old, new, 15); len(regressions) != 0 {
		t.Errorf("threshold 15%% must accept a 10%% regression, got %v", regressions)
	}
}

func ids2(rows []compareRow) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.ID
	}
	return out
}

// TestCompareBenchLive exercises the live-load columns: throughput and
// p99 carry through to the row, and a p99 regression is flagged on its
// own alongside the ns/op check.
func TestCompareBenchLive(t *testing.T) {
	old := benchFile{Results: []benchResult{
		{ID: "live-load", NsPerOp: 10_000, PacketsPerSec: 100_000, P99Us: 400},
	}}
	new := benchFile{Results: []benchResult{
		{ID: "live-load", NsPerOp: 9_000, PacketsPerSec: 111_111, P99Us: 480},
	}}
	rows, regressions, _ := compareBench(old, new, 5)
	if len(rows) != 1 || !rows[0].Live {
		t.Fatalf("want one live row, got %+v", rows)
	}
	if rows[0].NewPPS != 111_111 || rows[0].OldP99Us != 400 {
		t.Errorf("live fields lost: %+v", rows[0])
	}
	// ns/op improved but the tail grew 20% — only the p99 gate fires.
	if len(regressions) != 1 || regressions[0] != "live-load: p99 +20.0%" {
		t.Errorf("regressions = %v, want exactly the p99 flag", regressions)
	}
}

func TestLivePPS(t *testing.T) {
	both := benchFile{Results: []benchResult{
		{ID: "live-load-serial", PacketsPerSec: 25_000},
		{ID: "live-load", PacketsPerSec: 100_000},
	}}
	if pps, id, ok := livePPS(both); !ok || id != "live-load" || pps != 100_000 {
		t.Errorf("livePPS(both) = %v %q %v, want batched row", pps, id, ok)
	}
	serialOnly := benchFile{Results: []benchResult{
		{ID: "live-load-serial", PacketsPerSec: 25_000},
	}}
	if pps, id, ok := livePPS(serialOnly); !ok || id != "live-load-serial" || pps != 25_000 {
		t.Errorf("livePPS(serial-only) = %v %q %v", pps, id, ok)
	}
	if _, _, ok := livePPS(benchFile{Results: []benchResult{{ID: "fig13", NsPerOp: 1}}}); ok {
		t.Error("livePPS must report absence when no live rows exist")
	}
}
