// Command alphawan-server runs a LoRaWAN network server that speaks the
// Semtech UDP packet-forwarder protocol: gateways (real or simulated with
// alphawan-gwsim) push uplinks, the server verifies MICs, deduplicates,
// logs metadata for the AlphaWAN planner, and answers MAC-command
// downlinks (ADR, channel plans) through the gateways' PULL path.
//
// Usage:
//
//	alphawan-server -listen :1700 -devices 16
//
// Device sessions are provisioned deterministically (the same derivation
// alphawan-gwsim uses), so the pair works out of the box.
//
// Ingest runs on the batched bridge: a dedicated socket reader feeds
// per-worker rings and the workers parse rxpks with the allocation-free
// scanner before handing frames to the sharded session table. On SIGINT
// the server stops accepting, drains every queued datagram, then waits
// briefly for gateways to acknowledge in-flight downlinks before
// reporting final counters.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"time"

	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/frame"
	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/netserver"
	"github.com/alphawan/alphawan/internal/region"
	"github.com/alphawan/alphawan/internal/udpfwd"
)

// provision registers n deterministic device sessions (DevAddr 0x0200_0001
// onward), matching alphawan-gwsim's derivation.
func provision(s *netserver.Server, n int) {
	appKey := frame.AESKey{0x2b, 0x7e, 0x15, 0x16}
	for i := 1; i <= n; i++ {
		addr := frame.DevAddr(0x02000000 | uint32(i))
		nwk, app, err := frame.DeriveSessionKeys(appKey, [3]byte{0x01}, [3]byte{0x13}, uint16(i))
		if err != nil {
			log.Fatalf("provision: %v", err)
		}
		s.Register(addr, nwk, app, lora.DR0, 0)
	}
}

// lastSeen remembers, per device, which gateway heard it best most
// recently and on what radio parameters — the anchor for RX1 downlinks.
type lastSeen struct {
	mu  sync.Mutex
	gws map[frame.DevAddr]udpfwd.UplinkFrame
}

func (l *lastSeen) note(addr frame.DevAddr, up *udpfwd.UplinkFrame) {
	l.mu.Lock()
	u := *up
	u.Raw = nil // scratch buffer, not ours to retain
	l.gws[addr] = u
	l.mu.Unlock()
}

func (l *lastSeen) get(addr frame.DevAddr) (udpfwd.UplinkFrame, bool) {
	l.mu.Lock()
	u, ok := l.gws[addr]
	l.mu.Unlock()
	return u, ok
}

func main() {
	listen := flag.String("listen", ":1700", "UDP listen address (packet-forwarder port)")
	devices := flag.Int("devices", 16, "number of provisioned device sessions")
	workers := flag.Int("workers", 0, "uplink parse workers (0 = bridge default)")
	verbose := flag.Bool("verbose", false, "log every delivered uplink (slow at load)")
	flushWait := flag.Duration("flush-wait", 2*time.Second,
		"how long shutdown waits for gateways to ack in-flight downlinks")
	flag.Parse()

	srv := netserver.New()
	srv.ADREnabled = true
	provision(srv, *devices)
	seen := &lastSeen{gws: make(map[frame.DevAddr]udpfwd.UplinkFrame)}

	if *verbose {
		srv.Served.Subscribe(func(d netserver.Data) {
			log.Printf("uplink dev=%v fport=%d payload=%q gw=%d snr=%.1f",
				d.Dev.Addr, d.FPort, d.Payload, d.Meta.Gateway, d.Meta.SNRdB)
		})
	}

	var bridge *udpfwd.BatchBridge
	bridge, err := udpfwd.NewBatchBridge(*listen, udpfwd.Options{
		Workers: *workers,
		Handler: func(up *udpfwd.UplinkFrame) {
			meta := netserver.UplinkMeta{
				Gateway: int(up.EUI),
				Freq:    region.Hz(up.FreqHz),
				DR:      up.DR,
				RSSIdBm: float64(up.RSSIdBm),
				SNRdB:   up.SNRdB,
				At:      des.Time(up.Tmst),
			}
			// 4-byte DevAddr sits at offset 1 of every data frame; noting
			// it before HandleUplink keeps the RX1 anchor fresh even for
			// duplicate copies (a retransmitting device may have moved).
			if len(up.Raw) >= 5 {
				addr := frame.DevAddr(uint32(up.Raw[1]) | uint32(up.Raw[2])<<8 |
					uint32(up.Raw[3])<<16 | uint32(up.Raw[4])<<24)
				seen.note(addr, up)
			}
			if err := srv.HandleUplink(up.Raw, meta); err != nil && *verbose {
				log.Printf("uplink rejected: %v", err)
			}
		},
	})
	if err != nil {
		log.Fatalf("alphawan-server: %v", err)
	}
	log.Printf("alphawan-server: UDP bridge on %s, %d sessions", bridge.Addr(), *devices)

	// MAC commands (ADR retargets, channel plans) ride the PULL path as
	// RX1 downlinks through whichever gateway last heard the device.
	srv.Commands.Subscribe(func(c netserver.Command) {
		up, ok := seen.get(c.Dev.Addr)
		if !ok {
			return // never heard live; nowhere to transmit
		}
		raw, err := srv.BuildCommandDownlink(c.Dev, c.Cmds)
		if err != nil {
			log.Printf("downlink build dev=%v: %v", c.Dev.Addr, err)
			return
		}
		tx := udpfwd.TXPK{
			Tmst: up.Tmst + uint32(netserver.RX1Delay/des.Microsecond),
			Freq: float64(up.FreqHz) / 1e6,
			RFCh: up.RFCh,
			Powe: 14,
			Modu: "LORA",
			Datr: udpfwd.DatrString(up.DR),
			CodR: "4/5",
			Size: len(raw),
			Data: udpfwd.EncodeData(raw),
		}
		if err := bridge.SendDownlink(up.EUI, tx); err != nil && *verbose {
			log.Printf("downlink dev=%v gw=%d: %v", c.Dev.Addr, up.EUI, err)
		}
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig

	// Phased shutdown: stop accepting uplinks but keep the socket open,
	// let the workers finish every queued datagram (those uplinks may
	// trigger final downlinks, which still need the socket), then give
	// gateways a bounded window to ack before tearing down.
	log.Printf("alphawan-server: draining")
	bridge.DrainUplinks()
	if !bridge.FlushDownlinks(*flushWait) {
		bst := bridge.Stats()
		log.Printf("alphawan-server: %d downlinks unacked after %v",
			bst.DownlinksSent-bst.DownlinkAcks, *flushWait)
	}
	bridge.Close()
	st := srv.Stats()
	bst := bridge.Stats()
	log.Printf("alphawan-server: served %d uplinks (%d delivered, %d duplicates, %d ADR commands), "+
		"%d datagrams (%d overload-dropped), %d/%d downlinks acked, shutting down",
		st.Uplinks, st.Delivered, st.Duplicates, st.ADRCommands,
		bst.Datagrams, bst.OverloadDrops, bst.DownlinkAcks, bst.DownlinksSent)
}
