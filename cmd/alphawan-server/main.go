// Command alphawan-server runs a LoRaWAN network server that speaks the
// Semtech UDP packet-forwarder protocol: gateways (real or simulated with
// alphawan-gwsim) push uplinks, the server verifies MICs, deduplicates,
// logs metadata for the AlphaWAN planner, and prints application payloads.
//
// Usage:
//
//	alphawan-server -listen :1700 -devices 16
//
// Device sessions are provisioned deterministically (the same derivation
// alphawan-gwsim uses), so the pair works out of the box.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"github.com/alphawan/alphawan/internal/des"
	"github.com/alphawan/alphawan/internal/frame"
	"github.com/alphawan/alphawan/internal/lora"
	"github.com/alphawan/alphawan/internal/netserver"
	"github.com/alphawan/alphawan/internal/region"
	"github.com/alphawan/alphawan/internal/udpfwd"
)

// provision registers n deterministic device sessions (DevAddr 0x0200_0001
// onward), matching alphawan-gwsim's derivation.
func provision(s *netserver.Server, n int) {
	appKey := frame.AESKey{0x2b, 0x7e, 0x15, 0x16}
	for i := 1; i <= n; i++ {
		addr := frame.DevAddr(0x02000000 | uint32(i))
		nwk, app, err := frame.DeriveSessionKeys(appKey, [3]byte{0x01}, [3]byte{0x13}, uint16(i))
		if err != nil {
			log.Fatalf("provision: %v", err)
		}
		s.Register(addr, nwk, app, lora.DR0, 0)
	}
}

func main() {
	listen := flag.String("listen", ":1700", "UDP listen address (packet-forwarder port)")
	devices := flag.Int("devices", 16, "number of provisioned device sessions")
	flag.Parse()

	srv := netserver.New()
	provision(srv, *devices)
	srv.Served.Subscribe(func(d netserver.Data) {
		log.Printf("uplink dev=%v fport=%d payload=%q gw=%d snr=%.1f",
			d.Dev.Addr, d.FPort, d.Payload, d.Meta.Gateway, d.Meta.SNRdB)
	})

	bridge, err := udpfwd.NewBridge(*listen)
	if err != nil {
		log.Fatalf("alphawan-server: %v", err)
	}
	log.Printf("alphawan-server: UDP bridge on %s, %d sessions", bridge.Addr(), *devices)

	go func() {
		for up := range bridge.Uplinks() {
			raw, err := udpfwd.DecodeData(up.RXPK.Data)
			if err != nil {
				log.Printf("gateway %v: bad payload encoding: %v", up.EUI, err)
				continue
			}
			dr, err := udpfwd.ParseDatr(up.RXPK.Datr)
			if err != nil {
				log.Printf("gateway %v: %v", up.EUI, err)
				continue
			}
			meta := netserver.UplinkMeta{
				Gateway: int(up.EUI),
				Freq:    region.Hz(up.RXPK.Freq * 1e6),
				DR:      dr,
				RSSIdBm: float64(up.RXPK.RSSI),
				SNRdB:   up.RXPK.LSNR,
				At:      des.Time(up.RXPK.Tmst),
			}
			if err := srv.HandleUplink(raw, meta); err != nil {
				log.Printf("uplink rejected: %v", err)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := srv.Stats()
	log.Printf("alphawan-server: served %d uplinks (%d delivered, %d duplicates), shutting down",
		st.Uplinks, st.Delivered, st.Duplicates)
	bridge.Close()
}
